"""Ledger persistence: CSV (interchange), NPZ (fast) and JSONL (append).

Real deployments collect ratings continuously and analyze offline; this
module gives the ledger durable formats so traces can be saved,
shipped, and re-analyzed:

* **CSV** — ``rater,target,value,time`` with a header row; human
  readable, loads into any tool.
* **NPZ** — numpy's compressed archive of the four columns; orders of
  magnitude faster for large traces and bit-exact on timestamps.
* **JSONL** — one JSON object per line, *append-oriented*: new events
  can be added to an existing file without rewriting it, and a reader
  can stream a file that is still being written.  This is the
  detection service's write-ahead-log format
  (:mod:`repro.service.wal`), and doubles as a trace-tooling
  interchange format.

All loaders validate like live ingestion (id ranges, values, no
self-ratings), so a corrupted file fails loudly instead of poisoning an
analysis.
"""

from __future__ import annotations

import csv
import json
import pathlib
from typing import IO, Iterable, Iterator, Optional, Union

import numpy as np

from repro.errors import TraceError
from repro.ratings.events import Rating
from repro.ratings.ledger import RatingLedger

__all__ = [
    "save_csv",
    "load_csv",
    "save_npz",
    "load_npz",
    "append_jsonl",
    "iter_jsonl",
    "load_jsonl",
    "encode_jsonl",
    "decode_jsonl",
    "write_jsonl_events",
]

PathLike = Union[str, pathlib.Path]

_HEADER = ["rater", "target", "value", "time"]


def save_csv(ledger: RatingLedger, path: PathLike) -> int:
    """Write the ledger as CSV; returns the number of events written."""
    path = pathlib.Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_HEADER + [f"n={ledger.n}"])
        for rater, target, value, time in zip(
            ledger.raters, ledger.targets, ledger.values, ledger.times
        ):
            writer.writerow([int(rater), int(target), int(value),
                             repr(float(time))])
    return len(ledger)


def load_csv(path: PathLike, n: Union[int, None] = None) -> RatingLedger:
    """Load a ledger from CSV written by :func:`save_csv`.

    Parameters
    ----------
    path:
        CSV file path.
    n:
        Universe size override; defaults to the size recorded in the
        header (or, failing that, ``max id + 1``).
    """
    path = pathlib.Path(path)
    raters = []
    targets = []
    values = []
    times = []
    header_n = None
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise TraceError(f"{path} is empty — not a ledger CSV") from None
        if header[: len(_HEADER)] != _HEADER:
            raise TraceError(
                f"{path} does not look like a ledger CSV "
                f"(header {header[:4]!r})"
            )
        for extra in header[len(_HEADER):]:
            if extra.startswith("n="):
                header_n = int(extra[2:])
        for line_no, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != 4:
                raise TraceError(f"{path}:{line_no}: expected 4 columns, "
                                 f"got {len(row)}")
            try:
                raters.append(int(row[0]))
                targets.append(int(row[1]))
                values.append(int(row[2]))
                times.append(float(row[3]))
            except ValueError as exc:
                raise TraceError(f"{path}:{line_no}: {exc}") from None

    if n is None:
        n = header_n
    if n is None:
        n = (max(max(raters, default=0), max(targets, default=0)) + 1) or 1
    ledger = RatingLedger(n)
    ledger.extend(raters, targets, values, times)
    return ledger


def save_npz(ledger: RatingLedger, path: PathLike) -> int:
    """Write the ledger as a compressed NPZ; returns the event count."""
    path = pathlib.Path(path)
    np.savez_compressed(
        path,
        n=np.int64(ledger.n),
        raters=ledger.raters.copy(),
        targets=ledger.targets.copy(),
        values=ledger.values.copy(),
        times=ledger.times.copy(),
    )
    return len(ledger)


def load_npz(path: PathLike) -> RatingLedger:
    """Load a ledger from an NPZ written by :func:`save_npz`."""
    path = pathlib.Path(path)
    with np.load(path) as archive:
        required = {"n", "raters", "targets", "values", "times"}
        missing = required - set(archive.files)
        if missing:
            raise TraceError(
                f"{path} is missing ledger arrays: {sorted(missing)}"
            )
        ledger = RatingLedger(int(archive["n"]))
        ledger.extend(
            archive["raters"],
            archive["targets"],
            archive["values"].astype(np.int64),
            archive["times"],
        )
    return ledger


# ----------------------------------------------------------------------
# JSONL — the append-oriented format (service WAL + trace tooling)
# ----------------------------------------------------------------------

def encode_jsonl(rating: Rating) -> str:
    """One rating as a compact single-line JSON record (no newline)."""
    return json.dumps(
        {
            "rater": int(rating.rater),
            "target": int(rating.target),
            "value": int(rating.value),
            "time": float(rating.time),
        },
        separators=(",", ":"),
    )


def write_jsonl_events(handle: IO[str], events: Iterable[Rating]) -> int:
    """Write events to an open text handle; returns the count written.

    The low-level primitive behind :func:`append_jsonl`; the service WAL
    uses it directly so one file handle can stay open across appends.
    """
    count = 0
    for event in events:
        handle.write(encode_jsonl(event) + "\n")
        count += 1
    return count


def append_jsonl(path: PathLike, events: Iterable[Rating]) -> int:
    """Append rating events to a JSONL file; returns the count written.

    The file is created if missing; existing content is never touched,
    so repeated calls build one growing event log.  Events must be
    :class:`~repro.ratings.events.Rating` instances (already validated
    at construction).
    """
    path = pathlib.Path(path)
    with path.open("a") as handle:
        return write_jsonl_events(handle, events)


def decode_jsonl(line: str, n: Optional[int] = None,
                 where: str = "<jsonl>") -> Rating:
    """Parse one JSONL line into a validated :class:`Rating`.

    Applies the same checks as live ingestion: the :class:`Rating`
    constructor rejects self-ratings, bad values and negative ids, and
    an optional universe size ``n`` bounds the ids.  ``where`` names the
    source (``path:line``) in error messages.
    """
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceError(f"{where}: invalid JSON: {exc}") from None
    if not isinstance(record, dict):
        raise TraceError(f"{where}: expected a JSON object, got {type(record).__name__}")
    missing = {"rater", "target", "value"} - set(record)
    if missing:
        raise TraceError(f"{where}: missing fields {sorted(missing)}")
    try:
        rating = Rating(
            rater=int(record["rater"]),
            target=int(record["target"]),
            value=int(record["value"]),
            time=float(record.get("time", 0.0)),
        )
    except (TypeError, ValueError) as exc:
        raise TraceError(f"{where}: {exc}") from None
    if n is not None and (rating.rater >= n or rating.target >= n):
        raise TraceError(
            f"{where}: node id outside universe of size {n} "
            f"(rater={rating.rater}, target={rating.target})"
        )
    return rating


def iter_jsonl(path: PathLike, n: Optional[int] = None,
               skip: int = 0) -> Iterator[Rating]:
    """Stream validated :class:`Rating` events from a JSONL file.

    Parameters
    ----------
    path:
        JSONL file written by :func:`append_jsonl` (or any tool emitting
        ``{"rater", "target", "value", "time"}`` objects, one per line).
    n:
        Optional universe size; ids at/above it raise
        :class:`~repro.errors.TraceError`.
    skip:
        Number of leading events to skip without validation cost —
        recovery replays only the WAL tail after a snapshot.

    Blank lines are ignored, so a file truncated exactly at a line
    boundary (the only state an append-only writer can leave behind
    short of a torn final line) streams cleanly.
    """
    if skip < 0:
        raise TraceError(f"skip must be non-negative, got {skip}")
    path = pathlib.Path(path)
    with path.open() as handle:
        seen = 0
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            seen += 1
            if seen <= skip:
                continue
            yield decode_jsonl(line, n=n, where=f"{path}:{line_no}")


def load_jsonl(path: PathLike, n: Optional[int] = None) -> RatingLedger:
    """Load a whole JSONL event log into a :class:`RatingLedger`.

    ``n`` defaults to ``max id + 1`` over the file (one streaming pass
    buffers the events, so the file is read once).
    """
    events = list(iter_jsonl(path))
    if n is None:
        n = 1 + max(
            (max(e.rater, e.target) for e in events), default=0
        )
    ledger = RatingLedger(n)
    for event in events:
        ledger.add_rating(event)
    return ledger
