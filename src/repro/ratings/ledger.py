"""Append-only rating ledger with columnar (numpy) storage.

The ledger is the ground-truth event log a reputation manager collects.
It stores ratings column-wise in growable numpy arrays so that windowed
aggregation (the paper's period ``T``), per-pair queries and matrix
construction are all vectorized operations rather than per-event Python
loops.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Tuple, Union

import numpy as np

from repro.errors import RatingError, UnknownNodeError
from repro.ratings.backends import MatrixBackend
from repro.ratings.events import Rating
from repro.ratings.matrix import RatingMatrix
from repro.util.validation import check_int_range

__all__ = ["RatingLedger"]

_INITIAL_CAPACITY = 1024


class RatingLedger:
    """Columnar, append-only store of :class:`Rating` events.

    Parameters
    ----------
    n:
        Size of the node universe; ids outside ``0 .. n-1`` are rejected.

    Notes
    -----
    Amortized O(1) appends via capacity doubling; all reads operate on
    zero-copy slices of the live arrays.
    """

    __slots__ = ("n", "_size", "_raters", "_targets", "_values", "_times")

    def __init__(self, n: int):
        check_int_range("n", n, 1)
        self.n = n
        self._size = 0
        self._raters = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._targets = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._values = np.empty(_INITIAL_CAPACITY, dtype=np.int8)
        self._times = np.empty(_INITIAL_CAPACITY, dtype=np.float64)

    # ------------------------------------------------------------------
    # growth
    # ------------------------------------------------------------------
    def _ensure_capacity(self, extra: int) -> None:
        need = self._size + extra
        cap = len(self._raters)
        if need <= cap:
            return
        new_cap = max(need, cap * 2)
        for name in ("_raters", "_targets", "_values", "_times"):
            old = getattr(self, name)
            new = np.empty(new_cap, dtype=old.dtype)
            new[: self._size] = old[: self._size]
            setattr(self, name, new)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, rater: int, target: int, value: int, time: float = 0.0) -> None:
        """Append one rating event (validated like :class:`Rating`)."""
        if rater == target:
            raise RatingError(f"self-rating rejected (node {rater})")
        if not 0 <= rater < self.n:
            raise UnknownNodeError(rater, self.n)
        if not 0 <= target < self.n:
            raise UnknownNodeError(target, self.n)
        if value not in (-1, 0, 1):
            raise RatingError(f"rating value must be -1, 0 or +1, got {value!r}")
        self._ensure_capacity(1)
        i = self._size
        self._raters[i] = rater
        self._targets[i] = target
        self._values[i] = value
        self._times[i] = time
        self._size = i + 1

    def add_rating(self, rating: Rating) -> None:
        """Append a pre-validated :class:`Rating` object."""
        if not 0 <= rating.rater < self.n:
            raise UnknownNodeError(rating.rater, self.n)
        if not 0 <= rating.target < self.n:
            raise UnknownNodeError(rating.target, self.n)
        self._ensure_capacity(1)
        i = self._size
        self._raters[i] = rating.rater
        self._targets[i] = rating.target
        self._values[i] = rating.value
        self._times[i] = rating.time
        self._size = i + 1

    def extend(
        self,
        raters: Iterable[int],
        targets: Iterable[int],
        values: Iterable[int],
        times: Optional[Iterable[float]] = None,
    ) -> None:
        """Bulk-append parallel columns (vectorized validation)."""
        r = np.asarray(list(raters) if not isinstance(raters, np.ndarray) else raters,
                       dtype=np.int64)
        t = np.asarray(list(targets) if not isinstance(targets, np.ndarray) else targets,
                       dtype=np.int64)
        v = np.asarray(list(values) if not isinstance(values, np.ndarray) else values,
                       dtype=np.int64)
        if times is None:
            tm = np.zeros(r.size, dtype=np.float64)
        else:
            tm = np.asarray(
                list(times) if not isinstance(times, np.ndarray) else times,
                dtype=np.float64,
            )
        if not (r.shape == t.shape == v.shape == tm.shape) or r.ndim != 1:
            raise RatingError("extend() requires equal-length 1-D columns")
        if r.size == 0:
            return
        if (r < 0).any() or (r >= self.n).any() or (t < 0).any() or (t >= self.n).any():
            raise UnknownNodeError(int(max(r.max(initial=0), t.max(initial=0))), self.n)
        if (r == t).any():
            bad = int(r[(r == t).argmax()])
            raise RatingError(f"self-rating rejected (node {bad})")
        if not np.isin(v, (-1, 0, 1)).all():
            raise RatingError("rating values must be -1, 0 or +1")
        self._ensure_capacity(r.size)
        s, e = self._size, self._size + r.size
        self._raters[s:e] = r
        self._targets[s:e] = t
        self._values[s:e] = v
        self._times[s:e] = tm
        self._size = e

    # ------------------------------------------------------------------
    # columnar views
    # ------------------------------------------------------------------
    @property
    def raters(self) -> np.ndarray:
        """Rater ids of every event (live view — do not mutate)."""
        return self._raters[: self._size]

    @property
    def targets(self) -> np.ndarray:
        """Target ids of every event (live view)."""
        return self._targets[: self._size]

    @property
    def values(self) -> np.ndarray:
        """Values of every event (live view)."""
        return self._values[: self._size]

    @property
    def times(self) -> np.ndarray:
        """Timestamps of every event (live view)."""
        return self._times[: self._size]

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Rating]:
        """Iterate events as :class:`Rating` objects (slow path, for tests)."""
        for i in range(self._size):
            yield Rating(
                rater=int(self._raters[i]),
                target=int(self._targets[i]),
                value=int(self._values[i]),
                time=float(self._times[i]),
            )

    # ------------------------------------------------------------------
    # windowing & aggregation
    # ------------------------------------------------------------------
    def window_mask(self, t0: float = -np.inf, t1: float = np.inf) -> np.ndarray:
        """Boolean mask of events with ``t0 <= time < t1``.

        Half-open on the right so consecutive periods partition events.
        """
        if t1 < t0:
            raise RatingError(f"empty window: t0={t0} > t1={t1}")
        times = self.times
        return (times >= t0) & (times < t1)

    def to_matrix(
        self,
        t0: float = -np.inf,
        t1: float = np.inf,
        mask: Optional[np.ndarray] = None,
        backend: Union[None, str, MatrixBackend] = None,
    ) -> RatingMatrix:
        """Build a :class:`RatingMatrix` from events in ``[t0, t1)``.

        A precomputed ``mask`` (from :meth:`window_mask`) may be passed
        to avoid recomputing it.  ``backend`` selects the matrix
        storage engine (``"dense"`` / ``"sparse"`` / ``None`` for the
        process default); ingestion is one vectorized ``add_events``
        call on either engine.
        """
        m = self.window_mask(t0, t1) if mask is None else np.asarray(mask, dtype=bool)
        matrix = RatingMatrix(self.n, backend=backend)
        if m.any():
            matrix.add_events(
                self.raters[m], self.targets[m], self.values[m].astype(np.int64)
            )
        return matrix

    def pair_count(self, rater: int, target: int,
                   t0: float = -np.inf, t1: float = np.inf) -> int:
        """Number of ratings ``rater -> target`` inside the window."""
        m = self.window_mask(t0, t1)
        return int(((self.raters == rater) & (self.targets == target) & m).sum())

    def pair_series(self, rater: int, target: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(times, values)`` of all ratings ``rater -> target``, time-ordered.

        Used to reproduce Figure 1(b)'s rating-over-time plots.
        """
        sel = (self.raters == rater) & (self.targets == target)
        times = self.times[sel]
        values = self.values[sel].astype(np.int64)
        order = np.argsort(times, kind="stable")
        return times[order], values[order]

    def pair_frequency_table(
        self, t0: float = -np.inf, t1: float = np.inf
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Distinct (rater, target) pairs and their rating counts in window.

        Returns ``(raters, targets, counts)`` — the input to the
        suspicious-pair filter of Section III (pairs above ~20
        ratings/year are suspicious).  Implemented with a single sort
        over packed 128-bit-safe keys, no Python loops.
        """
        m = self.window_mask(t0, t1)
        r = self.raters[m]
        t = self.targets[m]
        if r.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        keys = r * np.int64(self.n) + t
        uniq, counts = np.unique(keys, return_counts=True)
        return uniq // self.n, uniq % self.n, counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RatingLedger(n={self.n}, events={self._size})"
