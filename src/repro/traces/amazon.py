"""Synthetic Amazon-style seller/buyer rating trace.

Generates one year of star ratings (1-5) over a set of book sellers,
matching the structure Section III extracts from the real crawl:

* sellers span a reputation spectrum (positive fractions ~0.67-0.98);
* a seller's transaction volume grows with its reputation (the paper's
  Figure 1(a) observation — "a higher reputed seller can attract more
  transactions");
* the average buyer rates a given seller about once a year (the crawl's
  per-pair mean), so any pair with >= 20 ratings/year is extraordinary;
* *suspicious* sellers additionally have partner colluders submitting
  5-star ratings at 20-55/year (C3/C4), and optionally a rival
  submitting 1-star ratings at a similar rate (the Figure 1(b)
  "rater 1" pattern).

The generator records ground truth (which sellers/raters were planted
as colluders or rivals) so the analysis functions' precision/recall can
be tested, but the analysis itself never reads the labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

import numpy as np

from repro.errors import TraceError
from repro.ratings.events import rating_from_score
from repro.ratings.ledger import RatingLedger
from repro.util.rng import as_generator
from repro.util.validation import check_int_range, check_probability

__all__ = ["AmazonTraceConfig", "AmazonTrace", "AmazonTraceGenerator"]


@dataclass(frozen=True)
class AmazonTraceConfig:
    """Shape parameters of the synthetic Amazon year.

    Attributes
    ----------
    n_sellers:
        Number of sellers (the crawl followed 97).
    n_buyers:
        Size of the buyer pool.
    duration_days:
        Trace length (the crawl spans ~351 days).
    reputation_range:
        ``(low, high)`` seller positive-fraction targets; sellers are
        spread uniformly across the range.
    base_volume:
        Expected ratings/year of the *lowest*-reputed seller; volume
        scales up with reputation by ``volume_slope``.
    volume_slope:
        Multiplicative volume advantage of the highest-reputed seller
        over the lowest.
    suspicious_fraction:
        Fraction of sellers planted with collusion partners.
    colluders_per_suspicious:
        How many partner raters each suspicious seller has.
    collusion_rate_range:
        Ratings/year each partner submits (paper: up to 55/year,
        filter threshold 20/year).
    rival_probability:
        Chance a suspicious seller also has a 1-star rival bomber.
    neutral_probability:
        Chance an organic rating is 3 stars (neutral).
    """

    n_sellers: int = 97
    n_buyers: int = 8000
    duration_days: float = 351.0
    reputation_range: Tuple[float, float] = (0.67, 0.98)
    base_volume: float = 400.0
    volume_slope: float = 12.0
    suspicious_fraction: float = 0.18
    colluders_per_suspicious: int = 2
    collusion_rate_range: Tuple[int, int] = (25, 55)
    rival_probability: float = 0.5
    neutral_probability: float = 0.05
    seed: Optional[int] = 0

    def __post_init__(self) -> None:
        check_int_range("n_sellers", self.n_sellers, 1)
        check_int_range("n_buyers", self.n_buyers, 1)
        if self.duration_days <= 0:
            raise TraceError(f"duration_days must be positive, got {self.duration_days}")
        lo, hi = self.reputation_range
        check_probability("reputation_range low", lo)
        check_probability("reputation_range high", hi)
        if hi < lo:
            raise TraceError(f"reputation_range inverted: {self.reputation_range}")
        if self.base_volume <= 0 or self.volume_slope < 1:
            raise TraceError("base_volume must be > 0 and volume_slope >= 1")
        check_probability("suspicious_fraction", self.suspicious_fraction)
        check_int_range("colluders_per_suspicious", self.colluders_per_suspicious, 1)
        rlo, rhi = self.collusion_rate_range
        check_int_range("collusion_rate low", rlo, 1)
        check_int_range("collusion_rate high", rhi, rlo)
        check_probability("rival_probability", self.rival_probability)
        check_probability("neutral_probability", self.neutral_probability)


@dataclass
class AmazonTrace:
    """One generated trace plus its planted ground truth.

    Star records are columnar numpy arrays; sellers are ids
    ``0 .. n_sellers-1`` and buyers ``n_sellers .. n_sellers+n_buyers-1``
    in the shared id space (so the trace converts losslessly to a
    :class:`RatingLedger`).
    """

    config: AmazonTraceConfig
    buyers: np.ndarray          # rater id per record
    sellers: np.ndarray         # seller id per record
    scores: np.ndarray          # star score 1-5
    days: np.ndarray            # event day in [0, duration)
    target_reputation: np.ndarray               # per-seller planted quality
    suspicious_sellers: FrozenSet[int] = frozenset()
    colluder_raters: FrozenSet[int] = frozenset()
    rival_raters: FrozenSet[int] = frozenset()
    collusion_pairs: Tuple[Tuple[int, int], ...] = ()   # (buyer, seller)

    def __len__(self) -> int:
        return len(self.scores)

    @property
    def n_ids(self) -> int:
        return self.config.n_sellers + self.config.n_buyers

    def to_ledger(self) -> RatingLedger:
        """Convert to a ternary-rating ledger (stars -> -1/0/+1)."""
        ledger = RatingLedger(self.n_ids)
        values = np.empty(len(self), dtype=np.int64)
        for star in range(1, 6):
            values[self.scores == star] = int(rating_from_score(star))
        ledger.extend(self.buyers, self.sellers, values, self.days)
        return ledger

    def seller_records(self, seller: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(buyers, scores, days)`` of one seller's ratings, time-ordered."""
        sel = self.sellers == seller
        order = np.argsort(self.days[sel], kind="stable")
        return self.buyers[sel][order], self.scores[sel][order], self.days[sel][order]


class AmazonTraceGenerator:
    """Generates :class:`AmazonTrace` instances from a config."""

    def __init__(self, config: Optional[AmazonTraceConfig] = None):
        self.config = config if config is not None else AmazonTraceConfig()

    # ------------------------------------------------------------------
    def generate(self, rng=None) -> AmazonTrace:
        """Produce one trace (deterministic given ``rng``/config seed)."""
        cfg = self.config
        gen = as_generator(rng if rng is not None else cfg.seed)
        s = cfg.n_sellers

        # Seller quality spectrum: evenly spread, shuffled so seller id
        # carries no information.
        lo, hi = cfg.reputation_range
        quality = np.linspace(lo, hi, s)
        gen.shuffle(quality)

        # Volume grows with reputation (Figure 1(a)): interpolate the
        # multiplicative slope across the quality spectrum.
        if hi > lo:
            rel = (quality - lo) / (hi - lo)
        else:
            rel = np.ones(s)
        volume = cfg.base_volume * (1.0 + (cfg.volume_slope - 1.0) * rel)

        buyers: List[np.ndarray] = []
        sellers: List[np.ndarray] = []
        scores: List[np.ndarray] = []
        days: List[np.ndarray] = []

        # --- organic one-off buyers --------------------------------------
        buyer_base = s
        for seller in range(s):
            count = int(gen.poisson(volume[seller]))
            if count == 0:
                continue
            # mean ~1 rating per buyer-seller pair: each rating drawn
            # from a distinct random buyer (collisions give the small
            # organic tail of repeat pairs the real trace also has).
            b = buyer_base + gen.integers(0, cfg.n_buyers, size=count)
            pos = gen.random(count) < quality[seller]
            neutral = gen.random(count) < cfg.neutral_probability
            sc = np.where(pos, gen.integers(4, 6, size=count), gen.integers(1, 3, size=count))
            sc = np.where(neutral, 3, sc)
            d = gen.uniform(0.0, cfg.duration_days, size=count)
            buyers.append(b.astype(np.int64))
            sellers.append(np.full(count, seller, dtype=np.int64))
            scores.append(sc.astype(np.int64))
            days.append(d)

        # --- planted collusion -------------------------------------------
        n_susp = int(round(cfg.suspicious_fraction * s))
        # Suspicious sellers are drawn from the upper-middle of the
        # reputation spectrum (the paper found them at [0.94, 0.97]).
        order = np.argsort(quality)
        upper = order[int(0.6 * s):]
        susp = gen.choice(upper, size=min(n_susp, len(upper)), replace=False)
        suspicious_sellers = frozenset(int(v) for v in susp)

        colluder_raters: set = set()
        rival_raters: set = set()
        pairs: List[Tuple[int, int]] = []
        # Dedicated buyer ids beyond the organic pool so planted raters
        # never collide with organic ones.
        next_buyer = s + cfg.n_buyers
        rlo, rhi = cfg.collusion_rate_range
        for seller in suspicious_sellers:
            for _ in range(cfg.colluders_per_suspicious):
                rater = next_buyer
                next_buyer += 1
                count = int(gen.integers(rlo, rhi + 1))
                d = np.sort(gen.uniform(0.0, cfg.duration_days, size=count))
                buyers.append(np.full(count, rater, dtype=np.int64))
                sellers.append(np.full(count, seller, dtype=np.int64))
                scores.append(np.full(count, 5, dtype=np.int64))
                days.append(d)
                colluder_raters.add(rater)
                pairs.append((rater, int(seller)))
            if gen.random() < cfg.rival_probability:
                rater = next_buyer
                next_buyer += 1
                count = int(gen.integers(rlo, rhi + 1))
                d = np.sort(gen.uniform(0.0, cfg.duration_days, size=count))
                buyers.append(np.full(count, rater, dtype=np.int64))
                sellers.append(np.full(count, seller, dtype=np.int64))
                scores.append(np.full(count, 1, dtype=np.int64))
                days.append(d)
                rival_raters.add(rater)

        all_buyers = np.concatenate(buyers) if buyers else np.empty(0, dtype=np.int64)
        all_sellers = np.concatenate(sellers) if sellers else np.empty(0, dtype=np.int64)
        all_scores = np.concatenate(scores) if scores else np.empty(0, dtype=np.int64)
        all_days = np.concatenate(days) if days else np.empty(0, dtype=float)

        # Planted raters extended the id space beyond n_buyers; widen
        # the recorded config so to_ledger() sizes the universe right.
        extra = next_buyer - (s + cfg.n_buyers)
        from dataclasses import replace as _replace

        cfg_out = _replace(cfg, n_buyers=cfg.n_buyers + extra)

        return AmazonTrace(
            config=cfg_out,
            buyers=all_buyers,
            sellers=all_sellers,
            scores=all_scores,
            days=all_days,
            target_reputation=quality,
            suspicious_sellers=suspicious_sellers,
            colluder_raters=frozenset(colluder_raters),
            rival_raters=frozenset(rival_raters),
            collusion_pairs=tuple(pairs),
        )
