"""Synthetic Overstock-style bidirectional rating trace.

In Overstock Auctions every user can be both buyer and seller, so
ratings flow in both directions — the structure behind the paper's
Figure 1(d) interaction graph.  The generator plants colluding *pairs*
(mutual rating count above the 20/year edge threshold) over a sparse
organic background (~4.5 ratings per user per year, matching the
crawl's 450K transactions over 100K users), plus optional "chain"
nodes that collude pairwise with two different partners — the paper's
"three nodes connecting together, but … still in a pair-wise manner".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

import numpy as np

from repro.errors import TraceError
from repro.ratings.events import rating_from_score
from repro.ratings.ledger import RatingLedger
from repro.util.rng import as_generator
from repro.util.validation import check_int_range, check_probability

__all__ = ["OverstockTraceConfig", "OverstockTrace", "OverstockTraceGenerator"]


@dataclass(frozen=True)
class OverstockTraceConfig:
    """Shape parameters of the synthetic Overstock year."""

    n_users: int = 2000
    transactions_per_user: float = 4.5
    duration_days: float = 335.0          # Oct 2009 - Sept 2010
    n_colluding_pairs: int = 12
    n_chain_nodes: int = 2                # nodes pairing with two partners
    collusion_rate_range: Tuple[int, int] = (22, 60)
    positive_probability: float = 0.85    # organic ratings are mostly good
    seed: Optional[int] = 0

    def __post_init__(self) -> None:
        check_int_range("n_users", self.n_users, 4)
        if self.transactions_per_user <= 0:
            raise TraceError("transactions_per_user must be positive")
        if self.duration_days <= 0:
            raise TraceError("duration_days must be positive")
        check_int_range("n_colluding_pairs", self.n_colluding_pairs, 0)
        check_int_range("n_chain_nodes", self.n_chain_nodes, 0)
        rlo, rhi = self.collusion_rate_range
        check_int_range("collusion_rate low", rlo, 1)
        check_int_range("collusion_rate high", rhi, rlo)
        check_probability("positive_probability", self.positive_probability)
        needed = 2 * self.n_colluding_pairs + 2 * self.n_chain_nodes
        if needed > self.n_users:
            raise TraceError(
                f"{needed} colluding users requested but only {self.n_users} users"
            )


@dataclass
class OverstockTrace:
    """One generated bidirectional trace plus planted ground truth."""

    config: OverstockTraceConfig
    raters: np.ndarray
    targets: np.ndarray
    scores: np.ndarray
    days: np.ndarray
    colluders: FrozenSet[int] = frozenset()
    collusion_pairs: Tuple[Tuple[int, int], ...] = ()

    def __len__(self) -> int:
        return len(self.scores)

    def to_ledger(self) -> RatingLedger:
        """Convert to a ternary-rating ledger (stars -> -1/0/+1)."""
        ledger = RatingLedger(self.config.n_users)
        values = np.empty(len(self), dtype=np.int64)
        for star in range(1, 6):
            values[self.scores == star] = int(rating_from_score(star))
        ledger.extend(self.raters, self.targets, values, self.days)
        return ledger


class OverstockTraceGenerator:
    """Generates :class:`OverstockTrace` instances from a config."""

    def __init__(self, config: Optional[OverstockTraceConfig] = None):
        self.config = config if config is not None else OverstockTraceConfig()

    def generate(self, rng=None) -> OverstockTrace:
        """Produce one trace (deterministic given ``rng``/config seed)."""
        cfg = self.config
        gen = as_generator(rng if rng is not None else cfg.seed)
        n = cfg.n_users

        # --- organic background ------------------------------------------
        total = int(gen.poisson(cfg.transactions_per_user * n))
        raters = gen.integers(0, n, size=total)
        targets = gen.integers(0, n, size=total)
        keep = raters != targets
        raters, targets = raters[keep], targets[keep]
        count = raters.size
        pos = gen.random(count) < cfg.positive_probability
        scores = np.where(pos, gen.integers(4, 6, size=count),
                          gen.integers(1, 3, size=count))
        days = gen.uniform(0.0, cfg.duration_days, size=count)

        r_parts: List[np.ndarray] = [raters.astype(np.int64)]
        t_parts: List[np.ndarray] = [targets.astype(np.int64)]
        s_parts: List[np.ndarray] = [scores.astype(np.int64)]
        d_parts: List[np.ndarray] = [days]

        # --- planted pairs ------------------------------------------------
        needed = 2 * cfg.n_colluding_pairs + 2 * cfg.n_chain_nodes
        chosen = gen.choice(n, size=needed, replace=False) if needed else np.empty(0, int)
        pairs: List[Tuple[int, int]] = []
        idx = 0
        for _ in range(cfg.n_colluding_pairs):
            a, b = int(chosen[idx]), int(chosen[idx + 1])
            idx += 2
            pairs.append((a, b))
        # Chain nodes: the center pairs with two distinct partners taken
        # from already-placed pair members — still strictly pairwise.
        for k in range(cfg.n_chain_nodes):
            center, partner = int(chosen[idx]), int(chosen[idx + 1])
            idx += 2
            pairs.append((center, partner))
            if pairs[:-1]:
                other = pairs[k][0]
                if other not in (center, partner):
                    pairs.append((center, other))

        rlo, rhi = cfg.collusion_rate_range
        colluders: set = set()
        for a, b in pairs:
            colluders.add(a)
            colluders.add(b)
            for src, dst in ((a, b), (b, a)):
                cnt = int(gen.integers(rlo, rhi + 1))
                r_parts.append(np.full(cnt, src, dtype=np.int64))
                t_parts.append(np.full(cnt, dst, dtype=np.int64))
                s_parts.append(np.full(cnt, 5, dtype=np.int64))
                d_parts.append(np.sort(gen.uniform(0.0, cfg.duration_days, size=cnt)))

        return OverstockTrace(
            config=cfg,
            raters=np.concatenate(r_parts),
            targets=np.concatenate(t_parts),
            scores=np.concatenate(s_parts),
            days=np.concatenate(d_parts),
            colluders=frozenset(colluders),
            collusion_pairs=tuple(pairs),
        )
