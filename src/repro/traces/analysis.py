"""Section-III trace analysis: the Figure 1(a)-(c) computations.

Every function takes the columnar record arrays of an
:class:`AmazonTrace` / :class:`OverstockTrace` (or equivalent) and
computes the statistics the paper reads off the real crawl:

* :func:`seller_summaries` — per-seller positive/negative volumes vs.
  final reputation (Figure 1(a));
* :func:`suspicious_pairs` — the >= 20 ratings/year pair filter with the
  a/b statistics (Section III: "average a = 98.37 and average b = 1.63");
* :func:`classify_rater_patterns` — the three repeat-rater behaviour
  patterns of Figure 1(b) (persistent praise / persistent bombing /
  mixed);
* :func:`per_rater_daily_stats` — per-rater average ratings/day and
  max/min, split suspicious vs unsuspicious (Figure 1(c)).

All computations are vectorized (sort + ``np.unique`` group-bys) — no
per-rating Python loops.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import TraceError

__all__ = [
    "SellerSummary",
    "seller_summaries",
    "SuspiciousPairStats",
    "suspicious_pairs",
    "RaterPattern",
    "RaterDailyStats",
    "classify_rater_patterns",
    "per_rater_daily_stats",
]


def _positive_mask(scores: np.ndarray) -> np.ndarray:
    return scores >= 4


def _negative_mask(scores: np.ndarray) -> np.ndarray:
    return scores <= 2


@dataclass(frozen=True)
class SellerSummary:
    """One Figure 1(a) bar: a seller's volumes and final reputation."""

    seller: int
    total: int
    positive: int
    negative: int
    neutral: int
    reputation: float    # positive / (positive + negative)


def seller_summaries(
    sellers: np.ndarray, scores: np.ndarray
) -> List[SellerSummary]:
    """Per-seller rating volumes and Amazon-style reputation.

    Sellers are returned sorted by descending reputation — the paper's
    Figure 1(a) x-axis ordering.
    """
    sellers = np.asarray(sellers)
    scores = np.asarray(scores)
    if sellers.shape != scores.shape:
        raise TraceError("sellers and scores must be equal-length")
    if sellers.size == 0:
        return []
    uniq, inverse = np.unique(sellers, return_inverse=True)
    total = np.bincount(inverse)
    positive = np.bincount(inverse, weights=_positive_mask(scores)).astype(np.int64)
    negative = np.bincount(inverse, weights=_negative_mask(scores)).astype(np.int64)
    effective = positive + negative
    with np.errstate(invalid="ignore"):
        rep = np.divide(positive, effective, out=np.full(len(uniq), np.nan),
                        where=effective > 0)
    out = [
        SellerSummary(
            seller=int(uniq[k]),
            total=int(total[k]),
            positive=int(positive[k]),
            negative=int(negative[k]),
            neutral=int(total[k] - effective[k]),
            reputation=float(rep[k]),
        )
        for k in range(len(uniq))
    ]
    out.sort(key=lambda s: (-(s.reputation if s.reputation == s.reputation else -1.0),
                            s.seller))
    return out


@dataclass(frozen=True)
class SuspiciousPairStats:
    """Output of the Section-III >= threshold pair filter.

    Note on the paper's statistic: Section III reports "average a=98.37
    and average b=1.63" for suspicious pairs — the two sum to exactly
    100, so the paper's ``b`` is the *complement* of ``a`` (the pair's
    negative fraction), not an independent outsider fraction.
    ``mean_praise_fraction`` reproduces the paper's ``a`` (computed
    over praise pairs only — rival bombers filtered the same way the
    paper discusses them separately); ``mean_other_positive_fraction``
    is the genuine everyone-else fraction the detectors use.
    """

    threshold: int
    pairs: Tuple[Tuple[int, int], ...]       # (rater, target)
    pair_counts: Tuple[int, ...]
    suspicious_targets: Tuple[int, ...]
    suspicious_raters: Tuple[int, ...]
    mean_pair_positive_fraction: float       # over all hot pairs
    mean_other_positive_fraction: float      # genuine outsider fraction
    mean_pair_count: float
    max_pair_count: int
    mean_praise_fraction: float = float("nan")   # the paper's "a" (98.37%)
    n_praise_pairs: int = 0                  # pairs with a >= 0.5
    n_bombing_pairs: int = 0                 # pairs with a < 0.5 (rivals)

    @property
    def n_pairs(self) -> int:
        return len(self.pairs)


def suspicious_pairs(
    raters: np.ndarray,
    targets: np.ndarray,
    scores: np.ndarray,
    threshold: int = 20,
) -> SuspiciousPairStats:
    """Find rater-target pairs with at least ``threshold`` ratings.

    Reproduces the paper's filter ("we set the suspicious behavior
    filtering threshold as 20 ratings, which gives us 18 suspicious
    sellers and 139 suspicious raters") and the associated a/b
    statistics.  Pairs whose ratings are predominantly *negative*
    (rival bombers) are included in the pair list — the paper's filter
    is frequency-only — but their direction is visible through the
    per-pair positive fraction.
    """
    raters = np.asarray(raters)
    targets = np.asarray(targets)
    scores = np.asarray(scores)
    if not (raters.shape == targets.shape == scores.shape):
        raise TraceError("raters, targets and scores must be equal-length")
    if threshold < 1:
        raise TraceError(f"threshold must be >= 1, got {threshold}")
    if raters.size == 0:
        return SuspiciousPairStats(threshold, (), (), (), (), float("nan"),
                                   float("nan"), float("nan"), 0)
    # (empty-result constructor uses positional fields up to max count)

    span = int(max(raters.max(), targets.max())) + 1
    keys = raters.astype(np.int64) * span + targets.astype(np.int64)
    order = np.argsort(keys, kind="stable")
    keys_sorted = keys[order]
    uniq_keys, starts, counts = np.unique(
        keys_sorted, return_index=True, return_counts=True
    )
    hot = counts >= threshold
    if not hot.any():
        return SuspiciousPairStats(threshold, (), (), (), (), float("nan"),
                                   float("nan"),
                                   float(counts.mean()), int(counts.max()))

    pos = _positive_mask(scores)
    neg = _negative_mask(scores)
    pos_sorted = pos[order]
    neg_sorted = neg[order]
    cum_pos = np.concatenate(([0], np.cumsum(pos_sorted)))
    cum_neg = np.concatenate(([0], np.cumsum(neg_sorted)))

    # Per-target totals for the "everyone else" fraction b.
    t_uniq, t_inv = np.unique(targets, return_inverse=True)
    t_pos = np.bincount(t_inv, weights=pos).astype(np.int64)
    t_neg = np.bincount(t_inv, weights=neg).astype(np.int64)
    t_index = {int(t): k for k, t in enumerate(t_uniq)}

    pairs: List[Tuple[int, int]] = []
    pair_counts: List[int] = []
    a_vals: List[float] = []
    b_vals: List[float] = []
    praise_vals: List[float] = []
    n_bomb = 0
    for k in np.flatnonzero(hot):
        start, cnt = int(starts[k]), int(counts[k])
        key = int(uniq_keys[k])
        rater, target = key // span, key % span
        p = int(cum_pos[start + cnt] - cum_pos[start])
        ng = int(cum_neg[start + cnt] - cum_neg[start])
        eff = p + ng
        pairs.append((int(rater), int(target)))
        pair_counts.append(cnt)
        if eff > 0:
            a = p / eff
            a_vals.append(a)
            if a >= 0.5:
                praise_vals.append(a)
            else:
                n_bomb += 1
        ti = t_index[int(target)]
        other_pos = int(t_pos[ti]) - p
        other_eff = int(t_pos[ti] + t_neg[ti]) - eff
        if other_eff > 0:
            b_vals.append(other_pos / other_eff)

    return SuspiciousPairStats(
        threshold=threshold,
        pairs=tuple(pairs),
        pair_counts=tuple(pair_counts),
        suspicious_targets=tuple(sorted({t for _, t in pairs})),
        suspicious_raters=tuple(sorted({r for r, _ in pairs})),
        mean_pair_positive_fraction=float(np.mean(a_vals)) if a_vals else float("nan"),
        mean_other_positive_fraction=float(np.mean(b_vals)) if b_vals else float("nan"),
        mean_pair_count=float(counts.mean()),
        max_pair_count=int(counts.max()),
        mean_praise_fraction=float(np.mean(praise_vals)) if praise_vals else float("nan"),
        n_praise_pairs=len(praise_vals),
        n_bombing_pairs=n_bomb,
    )


class RaterPattern(enum.Enum):
    """The three repeat-rater behaviours of Figure 1(b)."""

    PERSISTENT_PRAISE = "persistent-praise"     # raters 2/3: always top score
    PERSISTENT_BOMBING = "persistent-bombing"   # rater 1: always bottom score
    MIXED = "mixed"                             # raters 4/5: normal variation


def classify_rater_patterns(
    raters: np.ndarray,
    targets: np.ndarray,
    scores: np.ndarray,
    target: int,
    min_ratings: int = 15,
    purity: float = 0.9,
) -> Dict[int, RaterPattern]:
    """Classify every repeat rater of ``target`` into a Figure 1(b) pattern.

    Parameters
    ----------
    target:
        The (suspicious) seller under investigation.
    min_ratings:
        Only raters with at least this many ratings of the target are
        classified (the paper picks raters with >= 15/year).
    purity:
        Fraction of ratings that must be extreme (5 or 1 stars) for the
        persistent classifications.
    """
    raters = np.asarray(raters)
    targets = np.asarray(targets)
    scores = np.asarray(scores)
    sel = targets == target
    r = raters[sel]
    sc = scores[sel]
    if r.size == 0:
        return {}
    uniq, inv = np.unique(r, return_inverse=True)
    totals = np.bincount(inv)
    fives = np.bincount(inv, weights=sc == 5).astype(np.int64)
    ones = np.bincount(inv, weights=sc == 1).astype(np.int64)
    out: Dict[int, RaterPattern] = {}
    for k in np.flatnonzero(totals >= min_ratings):
        if fives[k] / totals[k] >= purity:
            out[int(uniq[k])] = RaterPattern.PERSISTENT_PRAISE
        elif ones[k] / totals[k] >= purity:
            out[int(uniq[k])] = RaterPattern.PERSISTENT_BOMBING
        else:
            out[int(uniq[k])] = RaterPattern.MIXED
    return out


@dataclass(frozen=True)
class RaterDailyStats:
    """Figure 1(c) series for one seller: per-rater rating intensity."""

    target: int
    n_raters: int
    mean_per_day: float     # average ratings/day a rater of this seller submits
    max_count: int          # busiest single rater's total count
    min_count: int          # quietest single rater's total count
    count_variance: float   # variance of per-rater counts ("rating variance")


def per_rater_daily_stats(
    raters: np.ndarray,
    targets: np.ndarray,
    days: np.ndarray,
    target: int,
    duration_days: float,
) -> RaterDailyStats:
    """Per-rater rating-intensity statistics for one seller.

    ``mean_per_day`` is the average number of ratings a rater of this
    seller submits per day; ``max_count``/``min_count`` are the largest
    and smallest total counts any single rater reached — the three
    series of Figure 1(c).  Suspicious sellers show much larger maxima
    and count variance than unsuspicious sellers of similar reputation
    ("the suspicious sellers exhibit much larger rating variance").
    """
    raters = np.asarray(raters)
    targets = np.asarray(targets)
    if duration_days <= 0:
        raise TraceError(f"duration_days must be positive, got {duration_days}")
    sel = targets == target
    r = raters[sel]
    if r.size == 0:
        return RaterDailyStats(target, 0, 0.0, 0, 0, 0.0)
    _, counts = np.unique(r, return_counts=True)
    return RaterDailyStats(
        target=int(target),
        n_raters=len(counts),
        mean_per_day=float(counts.mean() / duration_days),
        max_count=int(counts.max()),
        min_count=int(counts.min()),
        count_variance=float(counts.var()),
    )
