"""Synthetic transaction traces and the Section-III analysis toolkit.

The paper analyzes ~2.1M crawled Amazon ratings (97 book sellers, Apr
2009 - Apr 2010) and ~450K Overstock transactions.  Those crawls are
not redistributable, so this package generates synthetic traces whose
*marginals* match what Section III measures — per-seller rating volume
vs. reputation, per-pair frequency distributions, per-rater daily
counts, and the bidirectional interaction graph — and provides the
analysis functions that regenerate Figure 1(a)-(d) and the suspicious-
pair statistics from any trace with the same schema.
"""

from repro.traces.amazon import AmazonTrace, AmazonTraceConfig, AmazonTraceGenerator
from repro.traces.overstock import (
    OverstockTrace,
    OverstockTraceConfig,
    OverstockTraceGenerator,
)
from repro.traces.analysis import (
    RaterDailyStats,
    RaterPattern,
    SellerSummary,
    SuspiciousPairStats,
    classify_rater_patterns,
    per_rater_daily_stats,
    seller_summaries,
    suspicious_pairs,
)
from repro.traces.graph import (
    InteractionGraphStats,
    interaction_graph,
    pair_structure_stats,
)

__all__ = [
    "AmazonTrace",
    "AmazonTraceConfig",
    "AmazonTraceGenerator",
    "OverstockTrace",
    "OverstockTraceConfig",
    "OverstockTraceGenerator",
    "RaterDailyStats",
    "RaterPattern",
    "SellerSummary",
    "SuspiciousPairStats",
    "classify_rater_patterns",
    "per_rater_daily_stats",
    "seller_summaries",
    "suspicious_pairs",
    "InteractionGraphStats",
    "interaction_graph",
    "pair_structure_stats",
]
