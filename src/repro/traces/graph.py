"""Figure 1(d): the thresholded interaction graph and its pair structure.

"We randomly sample 500 users and represent them as nodes in a graph.
If the number of ratings between node i to node j exceeds 20, we drew
an edge between the two nodes. …  The black nodes on the graph are
suspected colluders since they rate each other with high rating
frequency …  There is no closed structure with 3 or more nodes."

:func:`interaction_graph` builds that graph from raw records;
:func:`pair_structure_stats` quantifies its shape (edge count, degree
distribution, triangle count, component sizes) — the reproduction's
check of characteristic C5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

import networkx as nx
import numpy as np

from repro.errors import TraceError
from repro.util.rng import as_generator

__all__ = ["interaction_graph", "pair_structure_stats", "InteractionGraphStats"]


def interaction_graph(
    raters: np.ndarray,
    targets: np.ndarray,
    min_pair_ratings: int = 20,
    mutual: bool = True,
    sample: Optional[int] = None,
    rng=None,
) -> nx.Graph:
    """Build the thresholded interaction graph of Figure 1(d).

    Parameters
    ----------
    raters, targets:
        Parallel record columns.
    min_pair_ratings:
        Edge threshold: an undirected edge {i, j} appears when the
        rating flow crosses the threshold (paper: > 20).
    mutual:
        When true (default, the Overstock semantics where both ends
        rate), *both* directions must independently reach the
        threshold; when false the sum of both directions is used.
    sample:
        If given, restrict to a uniform random sample of this many
        users before thresholding (the paper samples 500).
    rng:
        Seed/generator for the sampling.

    Returns
    -------
    networkx.Graph
        Nodes are user ids that survive sampling and have at least one
        incident edge candidate; each edge carries ``weight`` (total
        ratings both ways) and ``forward``/``backward`` counts.
    """
    raters = np.asarray(raters, dtype=np.int64)
    targets = np.asarray(targets, dtype=np.int64)
    if raters.shape != targets.shape:
        raise TraceError("raters and targets must be equal-length")
    if min_pair_ratings < 1:
        raise TraceError(f"min_pair_ratings must be >= 1, got {min_pair_ratings}")

    if sample is not None and raters.size:
        gen = as_generator(rng)
        universe = np.unique(np.concatenate([raters, targets]))
        if sample < len(universe):
            keep = set(
                int(u) for u in gen.choice(universe, size=sample, replace=False)
            )
            mask = np.fromiter(
                ((int(r) in keep) and (int(t) in keep) for r, t in zip(raters, targets)),
                dtype=bool,
                count=raters.size,
            )
            raters, targets = raters[mask], targets[mask]

    graph = nx.Graph()
    if raters.size == 0:
        return graph

    span = int(max(raters.max(), targets.max())) + 1
    keys = raters * span + targets
    uniq, counts = np.unique(keys, return_counts=True)
    directed: Dict[Tuple[int, int], int] = {
        (int(k // span), int(k % span)): int(c) for k, c in zip(uniq, counts)
    }
    seen: set = set()
    for (i, j), fwd in directed.items():
        lo, hi = (i, j) if i < j else (j, i)
        if (lo, hi) in seen:
            continue
        seen.add((lo, hi))
        bwd = directed.get((j, i), 0)
        if mutual:
            qualifies = fwd >= min_pair_ratings and bwd >= min_pair_ratings
        else:
            qualifies = (fwd + bwd) >= min_pair_ratings
        if qualifies:
            graph.add_edge(lo, hi, weight=fwd + bwd,
                           forward=directed.get((lo, hi), 0),
                           backward=directed.get((hi, lo), 0))
    return graph


@dataclass(frozen=True)
class InteractionGraphStats:
    """Structural summary of an interaction graph (the C5 check)."""

    n_nodes: int
    n_edges: int
    n_triangles: int
    n_closed_structures: int      # components that are not trees of pairs
    component_sizes: Tuple[int, ...]
    max_degree: int
    suspected_colluders: FrozenSet[int]

    @property
    def all_pairwise(self) -> bool:
        """True when no closed structure of 3+ nodes exists (C5)."""
        return self.n_closed_structures == 0


def pair_structure_stats(graph: nx.Graph) -> InteractionGraphStats:
    """Quantify Figure 1(d)'s observation that collusion is pairwise.

    A *closed structure* is a connected component containing a cycle —
    i.e. mutual rating among 3+ nodes beyond a tree of pairwise links.
    Chains ("three nodes connecting together … still in a pair-wise
    manner") are trees and therefore do not count as closed.
    """
    components = [graph.subgraph(c) for c in nx.connected_components(graph)]
    closed = sum(
        1 for c in components if c.number_of_edges() >= c.number_of_nodes()
    )
    triangles = sum(nx.triangles(graph).values()) // 3 if len(graph) else 0
    degrees = [d for _, d in graph.degree()]
    return InteractionGraphStats(
        n_nodes=graph.number_of_nodes(),
        n_edges=graph.number_of_edges(),
        n_triangles=triangles,
        n_closed_structures=closed,
        component_sizes=tuple(sorted((len(c) for c in components), reverse=True)),
        max_degree=max(degrees) if degrees else 0,
        suspected_colluders=frozenset(int(v) for v in graph.nodes
                                      if graph.degree(v) >= 1),
    )
