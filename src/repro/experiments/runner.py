"""Repeat-and-average execution helpers.

"Each experiment is run 5 times and the average of the results is the
final result" (paper Section V).  :func:`run_seeds` executes an
experiment closure under distinct seeds; :func:`average_runs`
position-averages numeric vectors from those runs.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, TypeVar

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["run_seeds", "average_runs"]

T = TypeVar("T")


def run_seeds(fn: Callable[[int], T], repeats: int, base_seed: int = 0) -> List[T]:
    """Run ``fn(seed)`` for ``repeats`` distinct seeds.

    Seeds are ``base_seed, base_seed + 1, ...`` — deterministic, so a
    failing repeat can be reproduced in isolation.
    """
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    return [fn(base_seed + k) for k in range(repeats)]


def average_runs(vectors: Sequence[Sequence[float]]) -> np.ndarray:
    """Position-wise mean of equal-length numeric vectors."""
    if not vectors:
        raise ConfigurationError("average_runs requires at least one run")
    try:
        arr = np.asarray(vectors, dtype=float)
    except ValueError as exc:
        raise ConfigurationError(f"runs must be equal-length vectors: {exc}") from None
    if arr.ndim != 2:
        raise ConfigurationError(
            f"runs must be equal-length vectors, got shape {arr.shape}"
        )
    return arr.mean(axis=0)
