"""The result container every experiment function returns."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

from repro.util.tables import format_series, format_table

__all__ = ["FigureResult"]


@dataclass
class FigureResult:
    """One regenerated table/figure.

    Attributes
    ----------
    figure_id:
        Paper element id, e.g. ``"fig5"`` or ``"prop4.1"``.
    title:
        Human-readable description.
    headers / rows:
        The printed table (the figure's data series).
    series:
        Named scalar series for programmatic checks
        (e.g. ``{"eigentrust": {8: 0.05, 18: 0.12, ...}}``).
    checks:
        Name -> bool of the qualitative shape assertions this
        reproduction makes (see EXPERIMENTS.md); all should be true.
    notes:
        Free-form caveats (substitutions, deviations).
    """

    figure_id: str
    title: str
    headers: Sequence[str] = ()
    rows: List[Sequence[Any]] = field(default_factory=list)
    series: Dict[str, Dict[Any, float]] = field(default_factory=dict)
    checks: Dict[str, bool] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def all_checks_pass(self) -> bool:
        """Whether every registered shape check held."""
        return all(self.checks.values())

    def failed_checks(self) -> List[str]:
        return [name for name, ok in self.checks.items() if not ok]

    def render(self, float_fmt: str = ".4g") -> str:
        """Monospace rendering: title, table, series, checks, notes."""
        parts: List[str] = [f"== {self.figure_id}: {self.title} =="]
        if self.headers and self.rows:
            parts.append(format_table(self.headers, self.rows, float_fmt=float_fmt))
        for name, series in self.series.items():
            parts.append(format_series(name, series, float_fmt=float_fmt))
        if self.checks:
            marks = ", ".join(
                f"{name}={'PASS' if ok else 'FAIL'}" for name, ok in self.checks.items()
            )
            parts.append(f"shape checks: {marks}")
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
