"""Shared experiment configuration (the paper's Section-V setup).

The constants here are the reproduction's equivalents of the paper's
"honey spot" parameters; DESIGN.md/EXPERIMENTS.md document every place
they differ from the paper's literal numbers and why.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.basic import BasicCollusionDetector
from repro.core.optimized import OptimizedCollusionDetector
from repro.core.thresholds import DetectionThresholds
from repro.errors import ConfigurationError
from repro.p2p.simulator import SimulationConfig
from repro.reputation.eigentrust import EigenTrust, EigenTrustConfig

__all__ = [
    "ExperimentDefaults",
    "default_eigentrust",
    "default_detector",
    "repeats_from_env",
]


@dataclass(frozen=True)
class ExperimentDefaults:
    """Knobs shared by every simulation experiment.

    Attributes
    ----------
    alpha:
        EigenTrust pretrust weight.  0.05 keeps the pretrusted floor
        low enough that successful colluders overtake pretrusted nodes
        at B=0.6 (the Figure 5 ordering) while the pair-amplification
        factor ``(1 - alpha) / alpha`` stays finite.
    repeats:
        Independent runs averaged per experiment (paper: 5); override
        with the ``REPRO_REPEATS`` environment variable.
    colluder_sweep:
        The Figure 12/13 x-axis (paper: 8-58 in steps of 10).
    """

    alpha: float = 0.05
    repeats: int = 3
    colluder_sweep: Tuple[int, ...] = (8, 18, 28, 38, 48, 58)


DEFAULTS = ExperimentDefaults()


def repeats_from_env(default: Optional[int] = None) -> int:
    """Number of repeats: ``REPRO_REPEATS`` env var or the default."""
    raw = os.environ.get("REPRO_REPEATS")
    if raw is None:
        return default if default is not None else DEFAULTS.repeats
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(f"REPRO_REPEATS must be an int, got {raw!r}") from None
    if value < 1:
        raise ConfigurationError(f"REPRO_REPEATS must be >= 1, got {value}")
    return value


def default_eigentrust(config: SimulationConfig,
                       alpha: Optional[float] = None) -> EigenTrust:
    """The experiments' EigenTrust instance for a simulation config.

    Warm-started (cost accounting matches the paper's "converges within
    several iterations") and seeded with the config's pretrusted ids.
    """
    return EigenTrust(
        EigenTrustConfig(
            alpha=alpha if alpha is not None else DEFAULTS.alpha,
            warm_start=True,
            # 1e-4 L1 tolerance: simulated outcomes are bit-identical to
            # eps=1e-8 (trust *rankings* converge far earlier than the
            # vector), while the iteration count matches the paper's
            # "converges within several iterations" cost assumption.
            epsilon=1e-4,
            pretrusted=frozenset(config.pretrusted_ids),
        )
    )


def default_detector(kind: str,
                     thresholds: Optional[DetectionThresholds] = None):
    """Build a detector by name: ``"basic"`` or ``"optimized"``."""
    th = thresholds if thresholds is not None else DetectionThresholds.paper_simulation()
    if kind == "basic":
        return BasicCollusionDetector(th)
    if kind == "optimized":
        return OptimizedCollusionDetector(th)
    raise ConfigurationError(f"unknown detector kind {kind!r}")
