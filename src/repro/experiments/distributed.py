"""Distributed-aggregation cost experiment (extension of Section IV).

The paper's decentralized mode inherits EigenTrust's DHT-based
aggregation; this experiment quantifies that substrate's communication
cost: per-iteration segment messages grow as ``K * (K - 1)`` in the
number of managers ``K``, while the fixed point stays identical to the
centralized computation.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.experiments.result import FigureResult
from repro.reputation.decentralized import DecentralizedReputationSystem
from repro.reputation.distributed_eigentrust import DistributedEigenTrust
from repro.reputation.eigentrust import EigenTrust, EigenTrustConfig

__all__ = ["sec4b_distributed_aggregation"]


def _load_workload(system: DecentralizedReputationSystem, seed: int) -> None:
    rng = np.random.default_rng(seed)
    for _ in range(2000):
        r, t = rng.choice(system.n, size=2, replace=False)
        system.submit_rating(int(r), int(t),
                             int(rng.choice([-1, 1], p=[0.2, 0.8])))


def sec4b_distributed_aggregation(
    manager_counts: Sequence[int] = (2, 4, 8, 16),
    n: int = 100,
    seed: int = 0,
) -> FigureResult:
    """Sweep the manager count; verify cost model and fixed-point parity."""
    config = EigenTrustConfig(alpha=0.1, epsilon=1e-6,
                              pretrusted=frozenset({1, 2, 3}))
    result = FigureResult(
        figure_id="sec4b",
        title="Distributed EigenTrust aggregation cost vs manager count",
        headers=["managers", "iterations", "segment_messages",
                 "messages_per_iteration", "total_hops", "matches_central"],
    )
    messages: Dict[int, float] = {}
    parity = []
    for managers in manager_counts:
        system = DecentralizedReputationSystem(
            n, manager_addresses=[f"power-{k}" for k in range(managers)]
        )
        _load_workload(system, seed)
        outcome = DistributedEigenTrust(system, config).compute()
        central = EigenTrust(config).compute(system.global_matrix())
        matches = bool(np.allclose(outcome.trust, central, atol=1e-5))
        parity.append(matches)
        messages[managers] = outcome.messages_per_iteration
        result.rows.append([
            managers, outcome.iterations, outcome.segment_messages,
            outcome.messages_per_iteration, outcome.total_hops, matches,
        ])

    result.series["messages_per_iteration"] = {
        float(k): v for k, v in messages.items()
    }
    result.checks["fixed_point_matches_centralized"] = all(parity)
    result.checks["quadratic_message_growth"] = all(
        messages[k] == k * (k - 1) for k in manager_counts
    )
    return result
