"""One function per paper figure/table — the reproduction's heart.

Every function returns a :class:`FigureResult` whose ``rows`` print the
same series the paper plots and whose ``checks`` encode the qualitative
shape the reproduction must match (see DESIGN.md Section 5).  Absolute
numbers differ from the paper — the substrate is a reimplemented
simulator — but a failing check means the *shape* no longer holds.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.basic import BasicCollusionDetector
from repro.core.decentralized import DecentralizedCollusionDetector
from repro.core.formula import reputation_surface
from repro.core.optimized import OptimizedCollusionDetector
from repro.core.thresholds import DetectionThresholds
from repro.experiments.config import (
    DEFAULTS,
    default_detector,
    default_eigentrust,
    repeats_from_env,
)
from repro.experiments.result import FigureResult
from repro.experiments.runner import average_runs, run_seeds
from repro.p2p.metrics import SimulationMetrics
from repro.p2p.simulator import Simulation, SimulationConfig, SimulationResult
from repro.ratings.matrix import RatingMatrix
from repro.reputation.decentralized import DecentralizedReputationSystem
from repro.traces.amazon import AmazonTraceGenerator
from repro.traces.analysis import (
    classify_rater_patterns,
    per_rater_daily_stats,
    seller_summaries,
    suspicious_pairs,
)
from repro.traces.graph import interaction_graph, pair_structure_stats
from repro.traces.overstock import OverstockTraceGenerator
from repro.util.rng import as_generator
from repro.util.stats import fit_power_law

__all__ = [
    "figure1a_rating_vs_reputation",
    "figure1b_rater_patterns",
    "figure1c_rating_frequency",
    "figure1d_interaction_graph",
    "figure4_reputation_surface",
    "figure5_eigentrust_b06",
    "figure6_eigentrust_b02",
    "figure7_compromised_pretrusted",
    "figure8_detectors_standalone",
    "figure9_et_optimized_b06",
    "figure10_et_optimized_b02",
    "figure11_et_optimized_compromised",
    "figure12_requests_to_colluders",
    "figure13_operation_cost",
    "prop41_basic_scaling",
    "prop42_optimized_scaling",
    "sec3_suspicious_stats",
    "sec4_decentralized_detection",
]

COMPROMISED_PAIRS: Tuple[Tuple[int, int], ...] = ((1, 4), (2, 6))


# ----------------------------------------------------------------------
# simulation plumbing
# ----------------------------------------------------------------------
def _simulate(
    b: float,
    seed: int,
    detector_kind: Optional[str] = None,
    compromised: bool = False,
    n_colluders: Optional[int] = None,
    pretrusted: Tuple[int, ...] = (1, 2, 3),
    colluder_ids: Optional[Tuple[int, ...]] = None,
) -> SimulationResult:
    """Run one paper-configured simulation."""
    cfg = SimulationConfig(
        good_behavior_colluder=b,
        seed=seed,
        pretrusted_ids=pretrusted,
        compromised_pairs=COMPROMISED_PAIRS if compromised else (),
        **({"colluder_ids": colluder_ids} if colluder_ids is not None else {}),
    )
    if n_colluders is not None:
        cfg = cfg.with_colluders(n_colluders)
    detector = default_detector(detector_kind) if detector_kind else None
    sim = Simulation(cfg, reputation_system=default_eigentrust(cfg), detector=detector)
    return sim.run()


def _reputation_figure(
    figure_id: str,
    title: str,
    b: float,
    detector_kind: Optional[str],
    compromised: bool,
    repeats: Optional[int],
    expected_zeroed: Sequence[int],
    ordering_check: str,
    colluder_ids: Optional[Tuple[int, ...]] = None,
    pretrusted: Tuple[int, ...] = (1, 2, 3),
) -> FigureResult:
    """Shared machinery for Figures 5-11 (reputation distributions)."""
    reps = repeats_from_env(repeats)
    results = run_seeds(
        lambda s: _simulate(b, s, detector_kind, compromised,
                            colluder_ids=colluder_ids, pretrusted=pretrusted),
        reps,
    )
    mean_rep = average_runs([r.final_reputations for r in results])
    metrics = [SimulationMetrics(r) for r in results]
    kind_means: Dict[str, float] = {}
    for key in ("normal", "pretrusted", "colluder"):
        kind_means[key] = float(
            np.mean([m.mean_reputation_by_kind()[key] for m in metrics])
        )

    result = FigureResult(
        figure_id=figure_id,
        title=title,
        headers=["node_id", "mean_reputation", "kind"],
    )
    cfg = results[0].config
    special = {i: "pretrusted" for i in cfg.pretrusted_ids}
    for i in metrics[0].actual_colluders:
        special[i] = "colluder"
    for node in range(1, min(21, cfg.n_nodes)):
        result.rows.append(
            [node, float(mean_rep[node]), special.get(node, "normal")]
        )
    result.series["mean_by_kind"] = kind_means
    result.series["colluder_request_share"] = {
        "mean": float(np.mean([r.colluder_request_share for r in results]))
    }

    if detector_kind:
        detected_all = [set(r.detected_colluders) for r in results]
        expected = set(int(v) for v in expected_zeroed)
        if expected:
            result.checks["all_target_colluders_zeroed"] = (
                max(float(mean_rep[i]) for i in expected) < 1e-12
            )
            result.checks["detection_recall"] = all(
                expected <= d for d in detected_all
            )
    if ordering_check == "colluders_top":
        result.checks["colluders_above_pretrusted"] = (
            kind_means["colluder"] > kind_means["pretrusted"]
        )
        result.checks["pretrusted_above_normal"] = (
            kind_means["pretrusted"] > kind_means["normal"]
        )
    elif ordering_check == "colluders_suppressed":
        result.checks["colluders_below_pretrusted"] = (
            kind_means["colluder"] < kind_means["pretrusted"]
        )
    elif ordering_check == "colluders_zero":
        result.checks["colluders_at_zero"] = kind_means["colluder"] < 1e-9
        result.checks["pretrusted_positive"] = kind_means["pretrusted"] > 0
    return result


# ----------------------------------------------------------------------
# Section III — trace analysis figures
# ----------------------------------------------------------------------
def figure1a_rating_vs_reputation(seed: int = 0) -> FigureResult:
    """Figure 1(a): rating volumes across the seller reputation spectrum."""
    trace = AmazonTraceGenerator().generate(rng=seed)
    summaries = seller_summaries(trace.sellers, trace.scores)
    result = FigureResult(
        figure_id="fig1a",
        title="Ratings vs. seller reputation (synthetic Amazon year)",
        headers=["reputation", "total", "positive", "negative"],
    )
    for s in summaries:
        result.rows.append([round(s.reputation, 3), s.total, s.positive, s.negative])
    # Shape: volume increases with reputation (compare top/bottom terciles).
    k = max(1, len(summaries) // 3)
    top = float(np.mean([s.total for s in summaries[:k]]))
    bottom = float(np.mean([s.total for s in summaries[-k:]]))
    result.series["tercile_volume"] = {"high_reputed": top, "low_reputed": bottom}
    result.checks["high_reputed_attract_more"] = top > bottom
    result.notes.append(
        "synthetic substitute for the 2.1M-rating Amazon crawl (see DESIGN.md)"
    )
    return result


def figure1b_rater_patterns(seed: int = 0) -> FigureResult:
    """Figure 1(b): repeat-rater behaviour patterns on a suspicious seller."""
    trace = AmazonTraceGenerator().generate(rng=seed)
    stats = suspicious_pairs(trace.buyers, trace.sellers, trace.scores, threshold=20)
    result = FigureResult(
        figure_id="fig1b",
        title="Rating patterns of repeat raters on one suspicious seller",
        headers=["rater", "pattern", "n_ratings", "mean_score"],
    )
    if not stats.suspicious_targets:
        result.checks["suspicious_seller_found"] = False
        return result
    seller = stats.suspicious_targets[0]
    patterns = classify_rater_patterns(
        trace.buyers, trace.sellers, trace.scores, target=seller, min_ratings=15
    )
    sel = trace.sellers == seller
    for rater, pattern in sorted(patterns.items()):
        mask = sel & (trace.buyers == rater)
        result.rows.append(
            [rater, pattern.value, int(mask.sum()), float(trace.scores[mask].mean())]
        )
    kinds = {p.value for p in patterns.values()}
    result.checks["suspicious_seller_found"] = True
    result.checks["praise_pattern_present"] = "persistent-praise" in kinds
    result.series["pattern_counts"] = {
        k: sum(1 for p in patterns.values() if p.value == k) for k in sorted(kinds)
    }
    return result


def figure1c_rating_frequency(seed: int = 0) -> FigureResult:
    """Figure 1(c): per-rater daily rating stats, suspicious vs unsuspicious."""
    trace = AmazonTraceGenerator().generate(rng=seed)
    stats = suspicious_pairs(trace.buyers, trace.sellers, trace.scores, threshold=20)
    suspicious = list(stats.suspicious_targets)[:5]
    unsuspicious = [
        s.seller
        for s in seller_summaries(trace.sellers, trace.scores)
        if s.seller not in stats.suspicious_targets
    ][:4]
    result = FigureResult(
        figure_id="fig1c",
        title="Per-rater rating intensity: suspicious vs unsuspicious sellers",
        headers=["seller", "class", "mean_per_day", "max_count", "min_count",
                 "count_variance"],
    )
    max_susp: List[int] = []
    max_unsusp: List[int] = []
    for seller in suspicious:
        st = per_rater_daily_stats(trace.buyers, trace.sellers, trace.days,
                                   seller, trace.config.duration_days)
        result.rows.append([seller, "suspicious", st.mean_per_day, st.max_count,
                            st.min_count, st.count_variance])
        max_susp.append(st.max_count)
    for seller in unsuspicious:
        st = per_rater_daily_stats(trace.buyers, trace.sellers, trace.days,
                                   seller, trace.config.duration_days)
        result.rows.append([seller, "unsuspicious", st.mean_per_day, st.max_count,
                            st.min_count, st.count_variance])
        max_unsusp.append(st.max_count)
    result.checks["suspicious_max_far_higher"] = (
        bool(max_susp) and bool(max_unsusp)
        and min(max_susp) > max(max_unsusp)
    )
    result.series["max_counts"] = {
        "suspicious_min": float(min(max_susp)) if max_susp else float("nan"),
        "unsuspicious_max": float(max(max_unsusp)) if max_unsusp else float("nan"),
    }
    return result


def figure1d_interaction_graph(seed: int = 0) -> FigureResult:
    """Figure 1(d): Overstock interaction graph is pairwise (C5)."""
    trace = OverstockTraceGenerator().generate(rng=seed)
    graph = interaction_graph(trace.raters, trace.targets, min_pair_ratings=20)
    stats = pair_structure_stats(graph)
    result = FigureResult(
        figure_id="fig1d",
        title="Thresholded interaction graph structure (synthetic Overstock)",
        headers=["metric", "value"],
        rows=[
            ["nodes_with_edges", stats.n_nodes],
            ["edges", stats.n_edges],
            ["triangles", stats.n_triangles],
            ["closed_structures", stats.n_closed_structures],
            ["max_degree", stats.max_degree],
            ["largest_component", stats.component_sizes[0] if stats.component_sizes else 0],
        ],
    )
    result.checks["pairwise_only"] = stats.all_pairwise
    result.checks["colluders_recovered"] = (
        stats.suspected_colluders == trace.colluders
    )
    result.notes.append(
        "synthetic substitute for the 450K-transaction Overstock crawl"
    )
    return result


# ----------------------------------------------------------------------
# Figure 4 — the Formula (1) surface
# ----------------------------------------------------------------------
def figure4_reputation_surface(t_a: float = 0.9, t_b: float = 0.3) -> FigureResult:
    """Figure 4: reputation range of suspected colluders over (F, N)."""
    pair, total, lower, upper = reputation_surface(t_a, t_b, n_total_max=200,
                                                   pair_count_max=100, steps=21)
    result = FigureResult(
        figure_id="fig4",
        title=f"Colluder reputation surface (T_a={t_a}, T_b={t_b})",
        headers=["pair_count", "n_total", "lower_bound", "upper_bound"],
    )
    for r in range(0, pair.shape[0], 5):
        for c in range(0, pair.shape[1], 5):
            if np.isnan(lower[r, c]):
                continue
            result.rows.append(
                [float(pair[r, c]), float(total[r, c]),
                 float(lower[r, c]), float(upper[r, c])]
            )
    valid = ~np.isnan(lower)
    result.checks["upper_geq_lower"] = bool(np.all(upper[valid] >= lower[valid]))
    # Lower bound grows with the pair count at fixed N (more booster
    # ratings force a higher reputation).
    col = valid[-1]
    result.checks["lower_monotone_in_pair_count"] = bool(
        np.all(np.diff(lower[-1][col]) >= 0)
    )
    return result


# ----------------------------------------------------------------------
# Figures 5-11 — reputation distributions
# ----------------------------------------------------------------------
def figure5_eigentrust_b06(repeats: Optional[int] = None) -> FigureResult:
    """Figure 5: EigenTrust alone, colluders behave well 60% of the time."""
    return _reputation_figure(
        "fig5", "EigenTrust reputation distribution, B=0.6",
        b=0.6, detector_kind=None, compromised=False, repeats=repeats,
        expected_zeroed=(), ordering_check="colluders_top",
    )


def figure6_eigentrust_b02(repeats: Optional[int] = None) -> FigureResult:
    """Figure 6: EigenTrust alone, B=0.2 — collusion partially suppressed."""
    return _reputation_figure(
        "fig6", "EigenTrust reputation distribution, B=0.2",
        b=0.2, detector_kind=None, compromised=False, repeats=repeats,
        expected_zeroed=(), ordering_check="colluders_suppressed",
    )


def figure7_compromised_pretrusted(repeats: Optional[int] = None) -> FigureResult:
    """Figure 7: EigenTrust with compromised pretrusted nodes, B=0.2."""
    result = _reputation_figure(
        "fig7", "EigenTrust with compromised pretrusted nodes, B=0.2",
        b=0.2, detector_kind=None, compromised=True, repeats=repeats,
        expected_zeroed=(), ordering_check="none",
    )
    # Shape: the compromised-boosted colluders (4-7) gain much more
    # reputation than the unboosted ones (8-11).
    rep = {row[0]: row[1] for row in result.rows}
    boosted = np.mean([rep[i] for i in (4, 5, 6, 7)])
    unboosted = np.mean([rep[i] for i in (8, 9, 10, 11)])
    result.series["colluder_groups"] = {
        "boosted_4_7": float(boosted), "unboosted_8_11": float(unboosted)
    }
    result.checks["boosted_exceed_unboosted"] = boosted > unboosted
    result.checks["boosted_exceed_honest_pretrusted"] = boosted > rep[3]
    return result


def figure8_detectors_standalone(repeats: Optional[int] = None) -> FigureResult:
    """Figure 8: the detectors alone (no pretrusted nodes), B=0.2.

    Colluders are ids 1-8 ("our proposed methods do not use pretrusted
    nodes"); both Unoptimized and Optimized produce identical
    reputation outcomes, so one distribution is reported with an
    explicit equivalence check between the two methods.
    """
    reps = repeats_from_env(repeats)
    colluders = tuple(range(1, 9))

    def run(kind: str, seed: int) -> SimulationResult:
        return _simulate(0.2, seed, detector_kind=kind, pretrusted=(),
                         colluder_ids=colluders)

    basic_runs = run_seeds(lambda s: run("basic", s), reps)
    opt_runs = run_seeds(lambda s: run("optimized", s), reps)
    mean_rep = average_runs([r.final_reputations for r in opt_runs])

    result = FigureResult(
        figure_id="fig8",
        title="Detectors standalone (colluder ids 1-8), B=0.2",
        headers=["node_id", "mean_reputation", "kind"],
    )
    for node in range(1, 21):
        kind = "colluder" if node in colluders else "normal"
        result.rows.append([node, float(mean_rep[node]), kind])
    result.checks["all_colluders_detected_basic"] = all(
        set(colluders) <= set(r.detected_colluders) for r in basic_runs
    )
    result.checks["all_colluders_detected_optimized"] = all(
        set(colluders) <= set(r.detected_colluders) for r in opt_runs
    )
    result.checks["methods_agree"] = all(
        rb.detected_colluders == ro.detected_colluders
        for rb, ro in zip(basic_runs, opt_runs)
    )
    result.checks["colluder_reputation_zero"] = (
        max(float(mean_rep[i]) for i in colluders) < 1e-12
    )
    return result


def figure9_et_optimized_b06(repeats: Optional[int] = None) -> FigureResult:
    """Figure 9: EigenTrust + Optimized detector, B=0.6."""
    return _reputation_figure(
        "fig9", "EigenTrust+Optimized reputation distribution, B=0.6",
        b=0.6, detector_kind="optimized", compromised=False, repeats=repeats,
        expected_zeroed=range(4, 12), ordering_check="colluders_zero",
    )


def figure10_et_optimized_b02(repeats: Optional[int] = None) -> FigureResult:
    """Figure 10: EigenTrust + Optimized detector, B=0.2."""
    return _reputation_figure(
        "fig10", "EigenTrust+Optimized reputation distribution, B=0.2",
        b=0.2, detector_kind="optimized", compromised=False, repeats=repeats,
        expected_zeroed=range(4, 12), ordering_check="colluders_zero",
    )


def figure11_et_optimized_compromised(repeats: Optional[int] = None) -> FigureResult:
    """Figure 11: EigenTrust + Optimized with compromised pretrusted nodes."""
    result = _reputation_figure(
        "fig11", "EigenTrust+Optimized with compromised pretrusted, B=0.2",
        b=0.2, detector_kind="optimized", compromised=True, repeats=repeats,
        expected_zeroed=list(range(4, 12)) + [1, 2], ordering_check="none",
    )
    rep = {row[0]: row[1] for row in result.rows}
    result.checks["compromised_pretrusted_zeroed"] = (
        max(rep[1], rep[2]) < 1e-12
    )
    result.checks["honest_pretrusted_stays_high"] = rep[3] > 0.01
    result.checks["colluders_zeroed"] = (
        max(rep[i] for i in range(4, 12)) < 1e-12
    )
    return result


# ----------------------------------------------------------------------
# Figures 12-13 — sweeps over the number of colluders
# ----------------------------------------------------------------------
def figure12_requests_to_colluders(
    repeats: Optional[int] = None,
    sweep: Optional[Sequence[int]] = None,
) -> FigureResult:
    """Figure 12: fraction of requests captured by colluders vs their count."""
    reps = repeats_from_env(repeats)
    counts = tuple(sweep) if sweep is not None else DEFAULTS.colluder_sweep
    systems = ("eigentrust", "unoptimized", "optimized")
    series: Dict[str, Dict[int, float]] = {s: {} for s in systems}

    for count in counts:
        for system in systems:
            kind = {"eigentrust": None, "unoptimized": "basic",
                    "optimized": "optimized"}[system]
            runs = run_seeds(
                lambda s, k=kind, c=count: _simulate(0.2, s, detector_kind=k,
                                                     n_colluders=c),
                reps,
            )
            series[system][count] = float(
                np.mean([r.colluder_request_share for r in runs])
            )

    result = FigureResult(
        figure_id="fig12",
        title="Percent of requests sent to colluders vs number of colluders (B=0.2)",
        headers=["n_colluders"] + list(systems),
        series=series,
    )
    for count in counts:
        result.rows.append([count] + [series[s][count] for s in systems])
    et = [series["eigentrust"][c] for c in counts]
    opt = [series["optimized"][c] for c in counts]
    unopt = [series["unoptimized"][c] for c in counts]
    result.checks["eigentrust_grows"] = et[-1] > et[0]
    result.checks["detectors_stay_low"] = max(max(opt), max(unopt)) < max(et)
    result.checks["detectors_beat_eigentrust_at_scale"] = (
        opt[-1] < et[-1] and unopt[-1] < et[-1]
    )
    result.checks["methods_comparable"] = all(
        abs(o - u) < 0.1 for o, u in zip(opt, unopt)
    )
    return result


def figure13_operation_cost(
    repeats: Optional[int] = None,
    sweep: Optional[Sequence[int]] = None,
) -> FigureResult:
    """Figure 13: unit-operation cost of thwarting collusion vs colluders."""
    reps = repeats_from_env(repeats)
    counts = tuple(sweep) if sweep is not None else DEFAULTS.colluder_sweep
    series: Dict[str, Dict[int, float]] = {
        "eigentrust": {}, "unoptimized": {}, "optimized": {}
    }

    for count in counts:
        et_runs = run_seeds(
            lambda s, c=count: _simulate(0.2, s, n_colluders=c), reps
        )
        series["eigentrust"][count] = float(
            np.mean([sum(r.reputation_ops.values()) for r in et_runs])
        )
        for system, kind in (("unoptimized", "basic"), ("optimized", "optimized")):
            runs = run_seeds(
                lambda s, k=kind, c=count: _simulate(0.2, s, detector_kind=k,
                                                     n_colluders=c),
                reps,
            )
            series[system][count] = float(
                np.mean([sum(r.detector_ops.values()) for r in runs])
            )

    result = FigureResult(
        figure_id="fig13",
        title="Operation cost for thwarting collusion vs number of colluders",
        headers=["n_colluders", "eigentrust", "unoptimized", "optimized"],
        series=series,
        notes=[
            "cost = deterministic unit-operation counts (see DESIGN.md), "
            "not wall-clock cycles",
        ],
    )
    for count in counts:
        result.rows.append(
            [count, series["eigentrust"][count], series["unoptimized"][count],
             series["optimized"][count]]
        )
    et = [series["eigentrust"][c] for c in counts]
    unopt = [series["unoptimized"][c] for c in counts]
    opt = [series["optimized"][c] for c in counts]
    # The paper's "Unoptimized >> EigenTrust" gap widens with the number
    # of colluders (more high-reputed nodes to deep-scan); at the small
    # end the two are comparable in this reproduction because our
    # EigenTrust's iteration count is tolerance-bound (EXPERIMENTS.md).
    half = len(counts) // 2
    result.checks["unoptimized_most_expensive_at_scale"] = all(
        u > e for u, e in zip(unopt[half:], et[half:])
    )
    result.checks["optimized_cheapest"] = all(o < e for o, e in zip(opt, et))
    # "the operation cost of EigenTrust is constant as the number of
    # colluders increases" — its iteration count wobbles a little with
    # the workload, so flatness is judged relative to Unoptimized's
    # systematic growth.
    result.checks["eigentrust_flat_in_colluders"] = (
        max(et) < 2.0 * min(et)
        and (et[-1] / et[0]) < (unopt[-1] / unopt[0])
    )
    result.checks["unoptimized_grows"] = unopt[-1] > unopt[0]
    return result


# ----------------------------------------------------------------------
# Propositions 4.1 / 4.2 — complexity scaling
# ----------------------------------------------------------------------
def _planted_matrix(
    n: int,
    n_pairs: int,
    rng,
    background_per_node: int = 30,
    pair_ratings: int = 60,
) -> RatingMatrix:
    """A synthetic period matrix with planted colluding pairs.

    Background nodes exchange mostly-positive ratings at low pair
    frequency; ``n_pairs`` disjoint pairs exchange ``pair_ratings``
    mutual positives while receiving negatives from the background.
    """
    gen = as_generator(rng)
    matrix = RatingMatrix(n)
    total = background_per_node * n
    raters = gen.integers(0, n, size=total)
    targets = gen.integers(0, n, size=total)
    keep = raters != targets
    raters, targets = raters[keep], targets[keep]
    values = np.where(gen.random(raters.size) < 0.8, 1, -1)
    matrix.add_events(raters, targets, values)
    for k in range(n_pairs):
        a, b = 2 * k, 2 * k + 1
        matrix.add(a, b, 1, count=pair_ratings)
        matrix.add(b, a, 1, count=pair_ratings)
        # outsiders sour on the colluders
        critics = gen.choice(n, size=10, replace=False)
        for c in critics:
            c = int(c)
            if c not in (a, b):
                matrix.add(c, a, -1, count=3)
                matrix.add(c, b, -1, count=3)
    return matrix


def _scaling_result(
    figure_id: str,
    title: str,
    detector_factory,
    sizes: Sequence[int],
    expected_exponent: float,
    tolerance: float,
    seed: int = 0,
) -> FigureResult:
    # Propositions 4.1/4.2 fix m (the number of high-reputed nodes)
    # while n grows: the gate is set so only the planted pairs qualify
    # (their mutual boosting puts them far above the background's raw
    # reputation), isolating the n-scaling of one node's check.
    thresholds = DetectionThresholds(t_r=50.0, t_a=0.9, t_b=0.7, t_n=40)
    costs: List[float] = []
    result = FigureResult(
        figure_id=figure_id, title=title,
        headers=["n_nodes", "operations"],
    )
    for n in sizes:
        matrix = _planted_matrix(n, n_pairs=4, rng=seed)
        detector = detector_factory(thresholds)
        report = detector.detect(matrix)
        costs.append(float(report.total_operations()))
        result.rows.append([n, report.total_operations()])
    k, _c = fit_power_law(list(sizes), costs)
    result.series["fit"] = {"exponent": k, "expected": expected_exponent}
    result.checks["exponent_in_band"] = (
        abs(k - expected_exponent) <= tolerance
    )
    return result


def prop41_basic_scaling(
    sizes: Sequence[int] = (100, 200, 400, 800), seed: int = 0
) -> FigureResult:
    """Proposition 4.1: the basic detector's cost grows ~quadratically."""
    return _scaling_result(
        "prop4.1", "Basic detector operation scaling (expect ~n^2)",
        lambda th: BasicCollusionDetector(th), sizes,
        expected_exponent=2.0, tolerance=0.35, seed=seed,
    )


def prop42_optimized_scaling(
    sizes: Sequence[int] = (100, 200, 400, 800), seed: int = 0
) -> FigureResult:
    """Proposition 4.2: the optimized detector's cost grows ~linearly."""
    return _scaling_result(
        "prop4.2", "Optimized detector operation scaling (expect ~n^1)",
        lambda th: OptimizedCollusionDetector(th), sizes,
        expected_exponent=1.0, tolerance=0.35, seed=seed,
    )


# ----------------------------------------------------------------------
# Section III statistics & Section IV decentralized protocol
# ----------------------------------------------------------------------
def sec3_suspicious_stats(seed: int = 0) -> FigureResult:
    """Section III: the >= 20 ratings/year suspicious-pair statistics."""
    trace = AmazonTraceGenerator().generate(rng=seed)
    stats = suspicious_pairs(trace.buyers, trace.sellers, trace.scores, threshold=20)
    result = FigureResult(
        figure_id="sec3",
        title="Suspicious-pair filter statistics (threshold = 20/year)",
        headers=["metric", "value"],
        rows=[
            ["suspicious_pairs", stats.n_pairs],
            ["suspicious_sellers", len(stats.suspicious_targets)],
            ["suspicious_raters", len(stats.suspicious_raters)],
            ["mean_praise_fraction(a)", stats.mean_praise_fraction],
            ["praise_pairs", stats.n_praise_pairs],
            ["bombing_pairs", stats.n_bombing_pairs],
            ["mean_pair_count", stats.mean_pair_count],
            ["max_pair_count", stats.max_pair_count],
        ],
    )
    planted = trace.suspicious_sellers
    found = set(stats.suspicious_targets)
    recall = len(found & planted) / len(planted) if planted else 1.0
    result.series["planted_recovery"] = {"recall": recall}
    result.checks["all_planted_sellers_found"] = recall == 1.0
    result.checks["praise_fraction_near_one"] = (
        stats.mean_praise_fraction > 0.95
    )
    result.checks["max_frequency_far_above_mean"] = (
        stats.max_pair_count > 10 * stats.mean_pair_count
    )
    return result


def sec4_decentralized_detection(
    n: int = 120, managers: int = 8, seed: int = 0
) -> FigureResult:
    """Section IV: the decentralized protocol equals centralized detection."""
    matrix = _planted_matrix(n, n_pairs=5, rng=seed)
    thresholds = DetectionThresholds(t_r=1.0, t_a=0.9, t_b=0.7, t_n=40)

    system = DecentralizedReputationSystem(
        n, manager_addresses=[f"manager-{k}" for k in range(managers)]
    )
    # Replay the planted matrix into the sharded system from its COO
    # entry set (effective entries: negatives = count - positives).
    t_idx, r_idx, cnt, pos_arr = matrix.entries(effective=True)
    for target, rater, eff, pos in zip(t_idx, r_idx, cnt, pos_arr):
        for _ in range(int(pos)):
            system.submit_rating(int(rater), int(target), 1)
        for _ in range(int(eff) - int(pos)):
            system.submit_rating(int(rater), int(target), -1)
    system.update()

    results: Dict[str, object] = {}
    messages: Dict[str, int] = {}
    for method in ("basic", "optimized"):
        detector = DecentralizedCollusionDetector(system, thresholds, method=method)
        report = detector.detect()
        results[method] = report.pair_set()
        messages[method] = report.messages

    central = OptimizedCollusionDetector(thresholds).detect(system.global_matrix())

    result = FigureResult(
        figure_id="sec4",
        title="Decentralized detection protocol (Chord-sharded managers)",
        headers=["metric", "value"],
        rows=[
            ["managers", managers],
            ["nodes", n],
            ["pairs_detected_basic", len(results["basic"])],
            ["pairs_detected_optimized", len(results["optimized"])],
            ["pairs_detected_centralized", len(central.pair_set())],
            ["protocol_messages_basic", messages["basic"]],
            ["protocol_messages_optimized", messages["optimized"]],
            ["total_dht_hops", system.messages.hops],
        ],
    )
    result.checks["matches_centralized"] = (
        results["optimized"] == central.pair_set()
    )
    result.checks["methods_agree"] = results["basic"] == results["optimized"]
    result.checks["planted_pairs_found"] = all(
        (2 * k, 2 * k + 1) in results["optimized"] for k in range(5)
    )
    return result
