"""Ablation studies over the reproduction's design choices.

DESIGN.md documents several places where the reproduction had to choose
a mechanism the paper leaves open (detector gate, booster exclusion,
EigenTrust's pretrust weight) and several thresholds whose values drive
the results (``T_N``, the collusion rate).  Each ablation here isolates
one choice, sweeps it, and reports the outcome as a
:class:`FigureResult` — same contract as the paper figures, with shape
checks asserting the *reason* the default was chosen.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.optimized import OptimizedCollusionDetector
from repro.core.thresholds import DetectionThresholds
from repro.experiments.config import repeats_from_env
from repro.experiments.figures import COMPROMISED_PAIRS
from repro.experiments.result import FigureResult
from repro.experiments.runner import run_seeds
from repro.p2p.metrics import SimulationMetrics, detection_precision_recall
from repro.p2p.selection import HighestReputationSelector, RandomSelector
from repro.p2p.simulator import Simulation, SimulationConfig
from repro.reputation.eigentrust import EigenTrust, EigenTrustConfig

__all__ = [
    "ablation_detector_gate",
    "ablation_booster_exclusion",
    "ablation_pretrust_weight",
    "ablation_frequency_threshold",
    "ablation_collusion_rate",
    "ablation_selection_policy",
    "ablation_response_policy",
]


def _eigentrust(config: SimulationConfig, alpha: float = 0.05) -> EigenTrust:
    return EigenTrust(
        EigenTrustConfig(alpha=alpha, warm_start=True, epsilon=1e-4,
                         pretrusted=frozenset(config.pretrusted_ids))
    )


def _small_config(**overrides) -> SimulationConfig:
    # Fewer categories + more query cycles than the paper's full config
    # keep every node's clusters busy, so all colluders accrue the
    # outside ratings the C2 condition needs as evidence.
    base = dict(
        n_nodes=120, n_categories=8, sim_cycles=8, query_cycles=18,
        pretrusted_ids=(1, 2, 3), colluder_ids=tuple(range(4, 12)),
        good_behavior_colluder=0.2, seed=0,
    )
    base.update(overrides)
    return SimulationConfig(**base)


# ----------------------------------------------------------------------
def ablation_detector_gate(repeats: Optional[int] = None) -> FigureResult:
    """Which reputation should the ``T_R`` gate see?

    Compares detection recall under three gates, in both the plain and
    the compromised-pretrusted scenario:

    * ``published`` — EigenTrust's global trust only (the literal
      reading of the paper when hosted by EigenTrust);
    * ``summation`` — the period matrix's raw sums plus the host's
      published-high nodes (the reproduction's default).

    The expected outcome motivates the default: the published gate
    misses colluders whose global trust EigenTrust already suppressed
    (their raw mutual ratings remain blatant), while the summation(+)
    gate catches every planted colluder in both scenarios.
    """
    reps = repeats_from_env(repeats)
    thresholds = DetectionThresholds(t_r=1.0, t_a=0.9, t_b=0.7, t_n=30)
    published_thresholds = DetectionThresholds(t_r=0.05, t_a=0.9, t_b=0.7, t_n=30)

    result = FigureResult(
        figure_id="ablation-gate",
        title="Detector T_R gate: published trust vs summation(+published)",
        headers=["scenario", "gate", "mean_recall"],
    )
    recalls: Dict[str, float] = {}
    for scenario, compromised in (("plain", False), ("compromised", True)):
        for gate in ("published", "summation"):
            def run(seed: int) -> float:
                config = _small_config(
                    seed=seed,
                    compromised_pairs=COMPROMISED_PAIRS if compromised else (),
                )
                th = published_thresholds if gate == "published" else thresholds
                sim = Simulation(
                    config,
                    reputation_system=_eigentrust(config),
                    detector=OptimizedCollusionDetector(th),
                    detector_gate=gate,
                )
                res = sim.run()
                _, recall = detection_precision_recall(
                    res.detected_colluders,
                    SimulationMetrics(res).actual_colluders,
                )
                return recall

            mean_recall = float(np.mean(run_seeds(run, reps)))
            recalls[f"{scenario}/{gate}"] = mean_recall
            result.rows.append([scenario, gate, mean_recall])

    result.series["recall"] = recalls
    # "High" rather than exactly 1.0: a colluder that never served a
    # single outsider (possible for single-interest nodes in the random
    # phase) has no C2 evidence and is unconvictable by the paper's
    # conditions under ANY gate — both branches share that ceiling.
    result.checks["summation_gate_high_recall"] = (
        recalls["plain/summation"] >= 0.85
        and recalls["compromised/summation"] >= 0.85
    )
    result.checks["published_gate_much_weaker"] = (
        recalls["plain/published"] <= recalls["plain/summation"] - 0.5
        and recalls["compromised/published"]
        <= recalls["compromised/summation"]
    )
    return result


# ----------------------------------------------------------------------
def ablation_booster_exclusion(repeats: Optional[int] = None) -> FigureResult:
    """Single vs multi-booster exclusion in the Figure-11 scenario.

    The paper's literal test excludes one rater at a time; a colluder
    with a pair partner *and* a compromised pretrusted booster then
    evades it — until its service volume grows enough to dilute the
    second booster's positives below ``T_b``.  The evasion is therefore
    *transient* in a running system: both modes eventually reach full
    recall, but the single-exclusion variant convicts the
    double-boosted colluders cycles later, during which they keep
    capturing requests.  The ablation measures that detection latency.
    """
    reps = repeats_from_env(repeats)
    thresholds = DetectionThresholds(t_r=1.0, t_a=0.9, t_b=0.7, t_n=30)

    result = FigureResult(
        figure_id="ablation-exclusion",
        title="Booster exclusion: paper's single-rater vs generalized set",
        headers=["mode", "mean_recall", "mean_latency_cycles",
                 "mean_colluder_share"],
    )
    stats: Dict[str, Dict[str, float]] = {}
    for mode, multi in (("single", False), ("multi", True)):
        def run(seed: int):
            config = _small_config(seed=seed,
                                   compromised_pairs=COMPROMISED_PAIRS)
            detector = OptimizedCollusionDetector(
                thresholds, multi_booster_exclusion=multi
            )
            sim = Simulation(config, reputation_system=_eigentrust(config),
                             detector=detector)
            res = sim.run()
            metrics = SimulationMetrics(res)
            _, recall = detection_precision_recall(
                res.detected_colluders, metrics.actual_colluders
            )
            first = metrics.detection_cycle()
            latency = float(np.mean([
                first.get(c, config.sim_cycles)
                for c in metrics.actual_colluders
            ]))
            return recall, latency, res.colluder_request_share

        runs = run_seeds(run, reps)
        stats[mode] = {
            "recall": float(np.mean([r for r, _, _ in runs])),
            "latency": float(np.mean([l for _, l, _ in runs])),
            "share": float(np.mean([s for _, _, s in runs])),
        }
        result.rows.append([mode, stats[mode]["recall"],
                            stats[mode]["latency"], stats[mode]["share"]])

    result.series["latency_cycles"] = {m: s["latency"] for m, s in stats.items()}
    # >= 0.85 rather than exactly 1.0: a colluder that never served a
    # single outsider has no C2 evidence and is unconvictable in either
    # mode (see ablation_detector_gate); the modes are compared on the
    # same seeds so the latency contrast is unaffected.
    result.checks["multi_exclusion_high_recall"] = (
        stats["multi"]["recall"] >= 0.85
    )
    result.checks["multi_recall_at_least_single"] = (
        stats["multi"]["recall"] >= stats["single"]["recall"]
    )
    result.checks["single_exclusion_slower"] = (
        stats["single"]["latency"] > stats["multi"]["latency"]
    )
    result.checks["latency_costs_requests"] = (
        stats["single"]["share"] >= stats["multi"]["share"]
    )
    return result


# ----------------------------------------------------------------------
def ablation_pretrust_weight(
    alphas: Sequence[float] = (0.02, 0.05, 0.1, 0.2, 0.4),
    repeats: Optional[int] = None,
) -> FigureResult:
    """EigenTrust's alpha vs the Figure-5 ordering (B = 0.6).

    Small alpha -> the pair-amplification factor (1-alpha)/alpha is
    large and successful colluders overtake the pretrusted floor (the
    paper's Figure 5); large alpha -> the pretrusted floor dominates
    and the ordering inverts.  Motivates the experiments' alpha = 0.05.
    """
    reps = repeats_from_env(repeats)
    result = FigureResult(
        figure_id="ablation-alpha",
        title="EigenTrust pretrust weight vs colluder/pretrusted ordering (B=0.6)",
        headers=["alpha", "colluder_mean", "pretrusted_mean", "colluders_win"],
    )
    ratio: Dict[float, float] = {}
    for alpha in alphas:
        def run(seed: int):
            config = _small_config(seed=seed, good_behavior_colluder=0.6)
            sim = Simulation(config,
                             reputation_system=_eigentrust(config, alpha=alpha))
            means = SimulationMetrics(sim.run()).mean_reputation_by_kind()
            return means["colluder"], means["pretrusted"]

        pairs = run_seeds(run, reps)
        colluder = float(np.mean([c for c, _ in pairs]))
        pretrusted = float(np.mean([p for _, p in pairs]))
        ratio[alpha] = colluder / pretrusted if pretrusted > 0 else float("inf")
        result.rows.append([alpha, colluder, pretrusted, colluder > pretrusted])

    result.series["colluder_over_pretrusted"] = ratio
    alphas_sorted = sorted(alphas)
    result.checks["small_alpha_favors_colluders"] = (
        ratio[alphas_sorted[0]] > 1.0
    )
    result.checks["large_alpha_favors_pretrusted"] = (
        ratio[alphas_sorted[-1]] < 1.0
    )
    result.checks["ratio_decreases_with_alpha"] = (
        ratio[alphas_sorted[0]] > ratio[alphas_sorted[-1]]
    )
    return result


# ----------------------------------------------------------------------
def ablation_frequency_threshold(
    t_ns: Sequence[int] = (5, 10, 20, 40, 80, 160, 300),
    seed: int = 0,
) -> FigureResult:
    """Sweep ``T_N`` against a workload with known pair frequencies.

    Plants colluding pairs at 120 ratings/period over an honest
    background whose busiest pairs reach a handful of ratings: recall
    collapses once ``T_N`` exceeds the colluders' frequency; precision
    stays perfect throughout because the ``T_a``/``T_b`` conditions
    already filter honest traffic.
    """
    from repro.experiments.figures import _planted_matrix

    n = 200
    n_pairs = 5
    pair_ratings = 120
    matrix = _planted_matrix(n, n_pairs=n_pairs, rng=seed,
                             pair_ratings=pair_ratings)
    planted = {(2 * k, 2 * k + 1) for k in range(n_pairs)}

    result = FigureResult(
        figure_id="ablation-tn",
        title="Frequency threshold T_N vs detection precision/recall",
        headers=["t_n", "pairs_found", "precision", "recall"],
    )
    recall_by_tn: Dict[int, float] = {}
    for t_n in t_ns:
        thresholds = DetectionThresholds(t_r=1.0, t_a=0.9, t_b=0.7, t_n=t_n)
        report = OptimizedCollusionDetector(thresholds).detect(matrix)
        found = set(report.pair_set())
        tp = len(found & planted)
        precision = tp / len(found) if found else 1.0
        recall = tp / len(planted)
        recall_by_tn[t_n] = recall
        result.rows.append([t_n, len(found), precision, recall])

    result.series["recall"] = {float(k): v for k, v in recall_by_tn.items()}
    low = [t for t in t_ns if t <= pair_ratings]
    high = [t for t in t_ns if t > pair_ratings]
    result.checks["full_recall_below_pair_frequency"] = all(
        recall_by_tn[t] == 1.0 for t in low
    )
    result.checks["recall_collapses_above_pair_frequency"] = all(
        recall_by_tn[t] == 0.0 for t in high
    )
    result.checks["precision_always_perfect"] = all(
        row[2] == 1.0 for row in result.rows
    )
    return result


# ----------------------------------------------------------------------
def ablation_collusion_rate(
    rates: Sequence[int] = (1, 2, 3, 5, 10, 20),
    repeats: Optional[int] = None,
) -> FigureResult:
    """Sweep the colluders' mutual-rating rate against a fixed ``T_N``.

    With ``T_N = 50`` per period and 12 query cycles per period, a pair
    rating ``r`` times per query cycle accumulates ``12 r`` mutual
    ratings/period: detection flips from impossible to guaranteed as
    ``12 r`` crosses ``T_N`` — the attacker's fundamental trade-off
    (rate enough to move reputations, but every rating is evidence).
    """
    reps = repeats_from_env(repeats)
    t_n = 50
    query_cycles = 12
    thresholds = DetectionThresholds(t_r=1.0, t_a=0.9, t_b=0.7, t_n=t_n)

    result = FigureResult(
        figure_id="ablation-rate",
        title="Collusion rating rate vs detection recall (T_N = 50/period)",
        headers=["rate_per_query_cycle", "ratings_per_period", "mean_recall"],
    )
    recall_by_rate: Dict[int, float] = {}
    for rate in rates:
        def run(seed: int) -> float:
            config = _small_config(seed=seed, collusion_rate=rate,
                                   query_cycles=query_cycles)
            sim = Simulation(config, reputation_system=_eigentrust(config),
                             detector=OptimizedCollusionDetector(thresholds))
            res = sim.run()
            _, recall = detection_precision_recall(
                res.detected_colluders,
                SimulationMetrics(res).actual_colluders,
            )
            return recall

        recall_by_rate[rate] = float(np.mean(run_seeds(run, reps)))
        result.rows.append([rate, rate * query_cycles, recall_by_rate[rate]])

    result.series["recall"] = {float(k): v for k, v in recall_by_rate.items()}
    below = [r for r in rates if r * query_cycles < t_n]
    above = [r for r in rates if r * query_cycles >= t_n]
    result.checks["undetectable_below_tn"] = all(
        recall_by_rate[r] == 0.0 for r in below
    )
    # Above the crossover every *convictable* colluder is caught; a
    # colluder that never served an outsider in any period has no C2
    # evidence (and captured no requests), so recall can sit slightly
    # below 1.0 on topologies that starve a pair — the check demands a
    # clean step, not perfection.
    result.checks["detected_above_tn"] = all(
        recall_by_rate[r] >= 0.85 for r in above
    )
    result.checks["sharp_crossover"] = bool(above) and bool(below) and (
        min(recall_by_rate[r] for r in above)
        - max(recall_by_rate[r] for r in below)
        >= 0.8
    )
    return result


# ----------------------------------------------------------------------
def ablation_selection_policy(repeats: Optional[int] = None) -> FigureResult:
    """Reputation-guided vs random server selection (B = 0.6).

    Quantifies how much of the colluders' request capture comes from
    reputation steering: under random selection their share is just
    their population fraction; under highest-reputation selection the
    boosted pairs concentrate the workload.
    """
    reps = repeats_from_env(repeats)

    result = FigureResult(
        figure_id="ablation-selector",
        title="Server-selection policy vs colluder request share (B=0.6)",
        headers=["policy", "mean_colluder_share"],
    )
    shares: Dict[str, float] = {}
    for policy in ("highest-reputation", "random"):
        def run(seed: int) -> float:
            config = _small_config(seed=seed, good_behavior_colluder=0.6)
            selector = (
                RandomSelector(rng=seed)
                if policy == "random"
                else HighestReputationSelector(rng=seed)
            )
            sim = Simulation(config, reputation_system=_eigentrust(config),
                             selector=selector)
            return sim.run().colluder_request_share

        shares[policy] = float(np.mean(run_seeds(run, reps)))
        result.rows.append([policy, shares[policy]])

    result.series["share"] = shares
    population_fraction = 8 / 120
    result.checks["random_share_near_population_fraction"] = (
        abs(shares["random"] - population_fraction) < 0.05
    )
    result.checks["steering_amplifies_capture"] = (
        shares["highest-reputation"] > 2 * shares["random"]
    )
    return result


# ----------------------------------------------------------------------
def ablation_response_policy(repeats: Optional[int] = None) -> FigureResult:
    """What to do with a convicted colluder: zero vs expel vs discard.

    The paper zeroes reputations.  Expelling (capacity 0) additionally
    guarantees no post-detection service; discarding the colluders'
    submitted ratings voids any praise they purchased for third
    parties.  All three keep full recall; the differences show up in
    the colluders' request share and the residual reputation mass.
    """
    reps = repeats_from_env(repeats)
    thresholds = DetectionThresholds(t_r=1.0, t_a=0.9, t_b=0.7, t_n=30)

    result = FigureResult(
        figure_id="ablation-response",
        title="Detection response: zero vs expel vs discard_ratings",
        headers=["response", "mean_recall", "mean_colluder_share"],
    )
    stats: Dict[str, Dict[str, float]] = {}
    for response in ("zero", "expel", "discard_ratings"):
        def run(seed: int):
            config = _small_config(seed=seed)
            sim = Simulation(
                config,
                reputation_system=_eigentrust(config),
                detector=OptimizedCollusionDetector(thresholds),
                response=response,
            )
            res = sim.run()
            _, recall = detection_precision_recall(
                res.detected_colluders,
                SimulationMetrics(res).actual_colluders,
            )
            return recall, res.colluder_request_share

        runs = run_seeds(run, reps)
        stats[response] = {
            "recall": float(np.mean([r for r, _ in runs])),
            "share": float(np.mean([s for _, s in runs])),
        }
        result.rows.append([response, stats[response]["recall"],
                            stats[response]["share"]])

    result.series["share"] = {k: v["share"] for k, v in stats.items()}
    # The response policy acts *after* conviction, so it cannot change
    # what gets detected — recall is identical across policies (and
    # high; a topology-starved colluder with no C2 evidence may keep it
    # fractionally below 1.0 on some seeds, equally for all policies).
    recalls = {s["recall"] for s in stats.values()}
    result.checks["recall_identical_across_policies"] = len(recalls) == 1
    result.checks["recall_high"] = min(recalls) >= 0.85
    result.checks["expel_never_worse_than_zero"] = (
        stats["expel"]["share"] <= stats["zero"]["share"] + 1e-9
    )
    return result
