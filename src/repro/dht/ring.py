"""The Chord ring: construction, routing, and the Insert/Lookup API.

The paper's decentralized reputation system uses two DHT primitives
(Section IV-A):

* ``Insert(ID_i, r_i)`` — route a rating to the reputation manager that
  owns ``ID_i``;
* ``Lookup(ID_i)`` — query the value stored under ``ID_i``.

:class:`ChordRing` implements both on top of iterative
``find_successor`` routing with exact finger tables.  Every routing
step is recorded on a :class:`repro.util.counters.MessageCounter`, so
the decentralized detection protocol's communication cost is
measurable.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.dht.hashing import IdSpace
from repro.dht.node import ChordNode
from repro.errors import DHTError, EmptyRingError, KeyNotFoundError
from repro.util.counters import MessageCounter

__all__ = ["ChordRing"]


class ChordRing:
    """An in-memory Chord ring with exact finger tables.

    Parameters
    ----------
    space:
        Identifier space; defaults to 32-bit.
    messages:
        Message counter shared with higher layers (a fresh one is
        created if omitted).

    Notes
    -----
    Nodes are addressed by their ring id.  :meth:`add_node` hashes an
    arbitrary address (e.g. an IP string) onto the ring; :meth:`join`
    accepts a raw ring id.  Construction is static/exact: after every
    membership change all finger tables are recomputed (O(n * bits)),
    which is the right trade-off for a simulator — routing behaviour is
    identical to a converged Chord deployment.
    """

    def __init__(self, space: Optional[IdSpace] = None,
                 messages: Optional[MessageCounter] = None):
        self.space = space if space is not None else IdSpace(32)
        self.messages = messages if messages is not None else MessageCounter()
        self._nodes: Dict[int, ChordNode] = {}
        self._sorted_ids: List[int] = []

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes

    @property
    def node_ids(self) -> List[int]:
        """Sorted list of ring ids currently on the ring."""
        return list(self._sorted_ids)

    def node(self, node_id: int) -> ChordNode:
        """The :class:`ChordNode` at ``node_id``."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise DHTError(f"no node with ring id {node_id}") from None

    def add_node(self, address: Union[int, str, bytes]) -> ChordNode:
        """Hash ``address`` onto the ring and join the resulting id."""
        return self.join(self.space.hash(address))

    def join(self, node_id: int) -> ChordNode:
        """Add a node at ``node_id``; keys it now owns migrate to it."""
        if not 0 <= node_id < self.space.size:
            raise DHTError(
                f"node id {node_id} outside identifier space of size {self.space.size}"
            )
        if node_id in self._nodes:
            raise DHTError(f"ring id collision at {node_id}")
        node = ChordNode(node_id, self.space)
        self._nodes[node_id] = node
        bisect.insort(self._sorted_ids, node_id)
        self._rebuild_pointers()
        # Migrate keys from the new node's successor.
        succ = self._nodes[node.successor] if node.successor != node_id else None
        if succ is not None:
            moving = [k for k in succ.store if node.owns(k)]
            for k in moving:
                node.store[k] = succ.store.pop(k)
        return node

    def leave(self, node_id: int) -> None:
        """Remove a node; its keys migrate to its successor."""
        node = self.node(node_id)
        self._nodes.pop(node_id)
        self._sorted_ids.remove(node_id)
        self._rebuild_pointers()
        if self._sorted_ids:
            heir = self._nodes[self._successor_id(node_id)]
            heir.store.update(node.store)

    def _successor_id(self, key: int) -> int:
        """Ring id of the clockwise successor of ``key`` (linear-index scan)."""
        if not self._sorted_ids:
            raise EmptyRingError("ring has no nodes")
        idx = bisect.bisect_left(self._sorted_ids, key % self.space.size)
        if idx == len(self._sorted_ids):
            idx = 0
        return self._sorted_ids[idx]

    def _rebuild_pointers(self) -> None:
        ids = self._sorted_ids
        n = len(ids)
        for i, nid in enumerate(ids):
            node = self._nodes[nid]
            node.successor = ids[(i + 1) % n]
            node.predecessor = ids[(i - 1) % n]
            node.fingers = [
                self._successor_id(self.space.finger_start(nid, k))
                for k in range(self.space.bits)
            ]

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def find_successor(self, key: int, start: Optional[int] = None) -> Tuple[int, int]:
        """Route to the owner of ``key``; returns ``(owner_id, hops)``.

        Iterative Chord routing: from ``start`` (default: lowest ring
        id), repeatedly hop to the closest preceding finger until the
        key falls between the current node and its successor.  Raises
        :class:`DHTError` if routing fails to converge (a finger-table
        bug — cannot happen with exact tables, but guarded anyway).
        """
        if not self._sorted_ids:
            raise EmptyRingError("ring has no nodes")
        key = key % self.space.size
        current = self._nodes[start if start is not None else self._sorted_ids[0]]
        if current.node_id not in self._nodes:
            raise DHTError(f"routing start {start} is not on the ring")
        hops = 0
        limit = 2 * max(self.space.bits, len(self._sorted_ids)) + 2
        while not self.space.in_interval(
            key, current.node_id, current.successor, inclusive_right=True
        ):
            nxt = current.closest_preceding_finger(key)
            if nxt == current.node_id:
                nxt = current.successor
            current = self._nodes[nxt]
            hops += 1
            if hops > limit:
                raise DHTError(f"routing for key {key} did not converge")
        # Loop invariant at exit: key lies in (current, current.successor],
        # so the owner is current's successor; reaching it is one more hop
        # unless current is the owner itself (single-node ring).
        owner_id = current.successor
        if owner_id != current.node_id:
            hops += 1
        return owner_id, hops

    def owner(self, key: int) -> int:
        """Owner of ``key`` without routing (authoritative linear answer)."""
        return self._successor_id(key % self.space.size)

    # ------------------------------------------------------------------
    # storage API (the paper's Insert / Lookup)
    # ------------------------------------------------------------------
    def insert(self, key: Union[int, str, bytes], value: Any,
               start: Optional[int] = None, kind: str = "insert") -> int:
        """Store ``value`` under ``key`` at its owner; returns the owner id."""
        ring_key = key if isinstance(key, int) else self.space.hash(key)
        ring_key %= self.space.size
        owner_id, hops = self.find_successor(ring_key, start)
        self._nodes[owner_id].store[ring_key] = value
        src = start if start is not None else self._sorted_ids[0]
        self.messages.record(kind, src, owner_id, hops)
        return owner_id

    def lookup(self, key: Union[int, str, bytes],
               start: Optional[int] = None, kind: str = "lookup") -> Any:
        """Fetch the value stored under ``key`` from its owner.

        Raises
        ------
        KeyNotFoundError
            If the owner has no value for ``key``.
        """
        ring_key = key if isinstance(key, int) else self.space.hash(key)
        ring_key %= self.space.size
        owner_id, hops = self.find_successor(ring_key, start)
        src = start if start is not None else self._sorted_ids[0]
        self.messages.record(kind, src, owner_id, hops)
        try:
            return self._nodes[owner_id].store[ring_key]
        except KeyError:
            raise KeyNotFoundError(ring_key) from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ChordRing(bits={self.space.bits}, nodes={len(self)})"
