"""Chord DHT substrate for decentralized reputation management.

The paper's decentralized mode (Figure 2) places reputation managers on
a Chord ring: "EigenTrust forms a number of high-reputed power nodes
into a Distributed Hash Table (DHT) for reputation aggregation".  This
package is an in-memory, message-counted Chord implementation:
consistent hashing, finger tables, iterative ``find_successor`` routing
with per-lookup hop counts, and a key-value store (``Insert`` /
``Lookup`` in the paper's API).
"""

from repro.dht.hashing import IdSpace, consistent_hash
from repro.dht.node import ChordNode
from repro.dht.ring import ChordRing
from repro.dht.stabilize import StabilizationProtocol

__all__ = ["IdSpace", "consistent_hash", "ChordNode", "ChordRing",
           "StabilizationProtocol"]
