"""Chord's dynamic join + stabilization protocol.

:class:`~repro.dht.ring.ChordRing` builds pointers *exactly* on every
membership change — the right trade-off for the reproduction's
experiments.  Real Chord deployments instead converge: a joining node
learns only its successor (one lookup through a bootstrap node), and
periodic **stabilize** / **fix_fingers** rounds repair the ring
(Stoica et al., TON 2003, Figure 7).  This module implements that
protocol on top of the same node structures, so the convergence
property the Chord paper proves — *"if any sequence of join operations
is interleaved with stabilizations, then … the ring eventually becomes
connected and routing succeeds"* — is testable here.

Usage::

    ring = ChordRing(IdSpace(16))
    ring.join(100)                      # bootstrap node (exact build)
    proto = StabilizationProtocol(ring)
    proto.dynamic_join(2000, bootstrap=100)   # successor-only join
    proto.run_until_converged()               # periodic repair rounds

While un-converged, exact-ring invariants (e.g.
``ring.owner`` == routed owner) may not hold — that is the point; the
tests assert they are *restored* after convergence.
"""

from __future__ import annotations

from repro.dht.ring import ChordRing
from repro.errors import DHTError
from repro.util.validation import check_int_range

__all__ = ["StabilizationProtocol"]


class StabilizationProtocol:
    """Successor-only joins plus periodic stabilize/fix-finger rounds.

    Parameters
    ----------
    ring:
        The ring to operate on.  Nodes added through
        :meth:`dynamic_join` get provisional pointers only; nodes added
        through ``ring.join`` remain exact.
    """

    def __init__(self, ring: ChordRing):
        self.ring = ring
        #: stabilization rounds executed so far
        self.rounds = 0

    # ------------------------------------------------------------------
    def dynamic_join(self, node_id: int, bootstrap: int) -> None:
        """Join with successor knowledge only (the Chord paper's join).

        The newcomer asks ``bootstrap`` to locate ``successor(node_id)``
        and adopts it; its predecessor is unknown and every finger
        provisionally points at the successor.  Keys do *not* migrate
        until stabilization notifies the successor (handled in
        :meth:`stabilize_round`).
        """
        if bootstrap not in self.ring:
            raise DHTError(f"bootstrap node {bootstrap} is not on the ring")
        if node_id in self.ring:
            raise DHTError(f"ring id collision at {node_id}")
        space = self.ring.space
        if not 0 <= node_id < space.size:
            raise DHTError(
                f"node id {node_id} outside identifier space of size {space.size}"
            )
        successor, _ = self.ring.find_successor(node_id, start=bootstrap)

        from repro.dht.node import ChordNode

        node = ChordNode(node_id, space)
        node.successor = successor
        node.predecessor = None
        node.fingers = [successor] * space.bits
        self.ring._nodes[node_id] = node
        import bisect

        bisect.insort(self.ring._sorted_ids, node_id)

    # ------------------------------------------------------------------
    # the periodic repair operations (Chord paper, Figure 7)
    # ------------------------------------------------------------------
    def _notify(self, target: int, candidate: int) -> None:
        """``candidate`` believes it may be ``target``'s predecessor."""
        node = self.ring.node(target)
        space = self.ring.space
        if node.predecessor is None or space.in_interval(
            candidate, node.predecessor, node.node_id
        ):
            node.predecessor = candidate
            # hand over keys the new predecessor now owns
            moving = [
                k for k in node.store
                if not node.owns(k)
            ]
            pred = self.ring.node(candidate)
            for k in moving:
                pred.store[k] = node.store.pop(k)

    def stabilize_round(self) -> None:
        """One full round: every node stabilizes and fixes all fingers."""
        self.rounds += 1
        space = self.ring.space
        for node_id in list(self.ring.node_ids):
            node = self.ring.node(node_id)
            # stabilize: check the successor's predecessor
            succ = self.ring.node(node.successor)
            candidate = succ.predecessor
            if candidate is not None and candidate != node_id and (
                space.in_interval(candidate, node_id, node.successor)
            ):
                node.successor = candidate
            self._notify(node.successor, node_id)
            # fix_fingers: re-resolve every finger through routing
            node.fingers = [
                self.ring.find_successor(space.finger_start(node_id, k),
                                         start=node_id)[0]
                for k in range(space.bits)
            ]

    def is_converged(self) -> bool:
        """Whether every pointer matches the exact (authoritative) ring."""
        ids = self.ring.node_ids
        n = len(ids)
        space = self.ring.space
        for i, node_id in enumerate(ids):
            node = self.ring.node(node_id)
            if node.successor != ids[(i + 1) % n]:
                return False
            if node.predecessor != ids[(i - 1) % n]:
                return False
            for k, finger in enumerate(node.fingers):
                start = space.finger_start(node_id, k)
                if finger != self.ring._successor_id(start):
                    return False
        return True

    def run_until_converged(self, max_rounds: int = 64) -> int:
        """Stabilize until every pointer is exact; returns rounds used.

        Raises
        ------
        DHTError
            If convergence is not reached within ``max_rounds`` (the
            Chord paper guarantees eventual convergence; hitting the
            cap indicates a protocol bug).
        """
        check_int_range("max_rounds", max_rounds, 1)
        for _ in range(max_rounds):
            if self.is_converged():
                return self.rounds
            self.stabilize_round()
        if self.is_converged():
            return self.rounds
        raise DHTError(
            f"stabilization did not converge within {max_rounds} rounds"
        )
