"""A Chord node: identifier, finger table and local key-value storage."""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.dht.hashing import IdSpace
from repro.errors import DHTError

__all__ = ["ChordNode"]


class ChordNode:
    """One participant on the Chord ring.

    The reproduction builds rings statically (all nodes known up
    front), so finger tables are computed exactly rather than converged
    via the stabilization protocol; :meth:`repro.dht.ring.ChordRing.join`
    / ``leave`` recompute affected state the same way.

    Attributes
    ----------
    node_id:
        Position on the identifier circle.
    fingers:
        ``fingers[k]`` is the id of the first node at clockwise distance
        ``>= 2**k`` — exactly Chord's ``finger[k].node``.
    successor / predecessor:
        Ring neighbours (ids).
    store:
        Local key-value storage for keys this node owns.
    """

    __slots__ = ("node_id", "space", "fingers", "successor", "predecessor", "store")

    def __init__(self, node_id: int, space: IdSpace):
        if not 0 <= node_id < space.size:
            raise DHTError(
                f"node id {node_id} outside identifier space of size {space.size}"
            )
        self.node_id = node_id
        self.space = space
        self.fingers: List[int] = []
        self.successor: Optional[int] = None
        self.predecessor: Optional[int] = None
        self.store: Dict[int, Any] = {}

    def closest_preceding_finger(self, key: int) -> int:
        """The finger most closely preceding ``key`` (Chord routing step).

        Scans the finger table highest-first and returns the first
        finger strictly inside ``(self.node_id, key)``; falls back to
        this node's id when no finger precedes the key (routing then
        hands off to the successor).
        """
        for finger in reversed(self.fingers):
            if finger != self.node_id and self.space.in_interval(
                finger, self.node_id, key
            ):
                return finger
        return self.node_id

    def owns(self, key: int) -> bool:
        """Whether ``key`` falls in this node's ownership arc.

        A node owns the arc ``(predecessor, node_id]`` — keys are
        assigned to their clockwise successor.
        """
        if self.predecessor is None:
            return True  # single-node ring owns everything
        return self.space.in_interval(
            key, self.predecessor, self.node_id, inclusive_right=True
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChordNode(id={self.node_id}, succ={self.successor}, "
            f"pred={self.predecessor}, keys={len(self.store)})"
        )
