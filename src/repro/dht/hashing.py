"""Consistent hashing and circular identifier-space arithmetic.

"We use ``ID_i`` to represent the DHT ID of node ``n_i``, which is the
consistent hash value of node ``n_i``'s IP address" (paper Section
IV-A).  :func:`consistent_hash` is SHA-1 truncated to ``bits`` bits —
the same construction as Chord — and :class:`IdSpace` provides the
modular-interval predicates Chord's routing invariants are written in.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Union

from repro.errors import ConfigurationError

__all__ = ["consistent_hash", "IdSpace"]


def consistent_hash(key: Union[int, str, bytes], bits: int = 32) -> int:
    """SHA-1 of ``key`` truncated to ``bits`` bits.

    Integers hash via their decimal string form so that the same logical
    key hashes identically whether presented as ``42`` or ``"42"``.
    """
    if not 1 <= bits <= 160:
        raise ConfigurationError(f"bits must be in [1, 160], got {bits}")
    if isinstance(key, bool):
        raise ConfigurationError("bool is not a valid hash key")
    if isinstance(key, int):
        data = str(key).encode("ascii")
    elif isinstance(key, str):
        data = key.encode("utf-8")
    elif isinstance(key, bytes):
        data = key
    else:
        raise ConfigurationError(
            f"key must be int, str or bytes, got {type(key).__name__}"
        )
    digest = hashlib.sha1(data).digest()
    return int.from_bytes(digest, "big") >> (160 - bits)


@dataclass(frozen=True)
class IdSpace:
    """A circular identifier space of ``2**bits`` positions.

    All interval predicates are *circular*: ``in_interval(x, a, b)``
    answers whether walking clockwise from ``a`` reaches ``x`` strictly
    before ``b``.  Degenerate intervals with ``a == b`` denote the whole
    ring (standard Chord convention — a single-node ring owns
    everything).
    """

    bits: int = 32

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 160:
            raise ConfigurationError(f"bits must be in [1, 160], got {self.bits}")

    @property
    def size(self) -> int:
        """Number of positions on the ring (``2**bits``)."""
        return 1 << self.bits

    def wrap(self, value: int) -> int:
        """Reduce ``value`` modulo the ring size."""
        return value % self.size

    def hash(self, key: Union[int, str, bytes]) -> int:
        """Consistent hash of ``key`` into this space."""
        return consistent_hash(key, self.bits)

    def distance(self, a: int, b: int) -> int:
        """Clockwise distance from ``a`` to ``b``."""
        return (b - a) % self.size

    def in_interval(
        self,
        x: int,
        a: int,
        b: int,
        *,
        inclusive_left: bool = False,
        inclusive_right: bool = False,
    ) -> bool:
        """Whether ``x`` lies in the clockwise interval from ``a`` to ``b``.

        With ``a == b`` the (exclusive) interval is the entire ring
        minus the endpoints — matching Chord's ``(a, a)`` convention.
        """
        x, a, b = self.wrap(x), self.wrap(a), self.wrap(b)
        if a == b:
            if x == a:
                return inclusive_left or inclusive_right
            return True
        dx = self.distance(a, x)
        db = self.distance(a, b)
        if dx == 0:
            return inclusive_left
        if dx == db:
            return inclusive_right
        return dx < db

    def finger_start(self, node_id: int, k: int) -> int:
        """Start of finger ``k`` (0-based): ``(node_id + 2**k) mod 2**bits``."""
        if not 0 <= k < self.bits:
            raise ConfigurationError(f"finger index must be in [0, {self.bits}), got {k}")
        return self.wrap(node_id + (1 << k))
