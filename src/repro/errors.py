"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so a
caller embedding the simulator inside a larger application can catch a
single base class.  Sub-hierarchies mirror the package layout: rating
ledger errors, reputation-system errors, DHT errors, simulation errors
and detection errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "RatingError",
    "UnknownNodeError",
    "ReputationError",
    "ConvergenceError",
    "DHTError",
    "EmptyRingError",
    "KeyNotFoundError",
    "SimulationError",
    "CapacityExhaustedError",
    "DetectionError",
    "ThresholdError",
    "TraceError",
    "ServiceError",
    "BackpressureError",
    "WorkerCrashError",
    "RecoveryError",
    "BenchError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigurationError(ReproError, ValueError):
    """A configuration object or parameter is invalid.

    Raised eagerly at construction time so that a bad experiment setup
    fails before any simulation cycles run.
    """


class RatingError(ReproError, ValueError):
    """A rating event is malformed (bad value, self-rating, bad period)."""


class UnknownNodeError(ReproError, KeyError):
    """An operation referenced a node id outside the registered universe."""

    def __init__(self, node_id: int, universe: int | None = None):
        self.node_id = node_id
        self.universe = universe
        detail = f"unknown node id {node_id!r}"
        if universe is not None:
            detail += f" (universe has {universe} nodes)"
        super().__init__(detail)


class ReputationError(ReproError):
    """Base class for reputation-system errors."""


class ConvergenceError(ReputationError, RuntimeError):
    """An iterative reputation computation failed to converge.

    Carries the iteration count and final residual so that callers can
    decide whether to accept the partial result.
    """

    def __init__(self, iterations: int, residual: float, tolerance: float):
        self.iterations = iterations
        self.residual = residual
        self.tolerance = tolerance
        super().__init__(
            f"power iteration did not converge after {iterations} iterations: "
            f"residual {residual:.3e} > tolerance {tolerance:.3e}"
        )


class DHTError(ReproError):
    """Base class for Chord DHT errors."""


class EmptyRingError(DHTError, RuntimeError):
    """A lookup or insert was attempted on a ring with no nodes."""


class KeyNotFoundError(DHTError, KeyError):
    """A DHT lookup for a stored value found no entry at the owner node."""

    def __init__(self, key: int):
        self.key = key
        super().__init__(f"no value stored under DHT key {key!r}")


class SimulationError(ReproError, RuntimeError):
    """The P2P simulation reached an inconsistent state."""


class CapacityExhaustedError(SimulationError):
    """A server was asked to serve beyond its per-cycle capacity.

    The simulator's selection policy never picks a saturated server, so
    seeing this error indicates a bug in a custom selection policy.
    """


class DetectionError(ReproError):
    """Base class for collusion-detection errors."""


class ThresholdError(DetectionError, ValueError):
    """A detection threshold is outside its valid domain."""


class TraceError(ReproError, ValueError):
    """A synthetic trace specification is invalid."""


class ServiceError(ReproError):
    """Base class for online detection-service errors."""


class BackpressureError(ServiceError):
    """An ingest batch was rejected because a shard queue is full.

    The service never silently drops accepted ratings: when a shard's
    bounded queue has no room, the *whole* batch is rejected before
    anything is written to the WAL, so the caller can retry later
    knowing no partial state was recorded.
    """

    def __init__(self, shard_id: int, capacity: int):
        self.shard_id = shard_id
        self.capacity = capacity
        super().__init__(
            f"shard {shard_id} ingest queue is full (capacity {capacity}); "
            f"batch rejected — retry with backoff"
        )


class WorkerCrashError(ServiceError):
    """A shard worker process died (or stopped responding) mid-operation.

    Raised by the process-per-shard service when a command round-trip
    finds the worker dead.  Durable workers are restarted from their own
    snapshot + WAL on the next interaction.

    **Retry semantics are at-least-once, not zero-trace.**  A multi-shard
    ``submit()`` that fails with this error may have durably applied the
    sub-batches that *other* (surviving) shards acknowledged before the
    crash — only the crashed shard's sub-batch is in doubt (it is
    recovered if and only if it reached that worker's WAL).  Retrying
    the whole batch verbatim therefore double-counts the acknowledged
    sub-batches, inflating pair/frequency counters.  This is unlike
    :class:`BackpressureError`, whose rejection guarantees zero recorded
    state.  Resubmit only what you can prove was lost, or accept
    at-least-once counting.
    """

    def __init__(self, shard_id: int, detail: str = ""):
        self.shard_id = shard_id
        message = f"shard {shard_id} worker process crashed"
        if detail:
            message += f": {detail}"
        super().__init__(message)


class RecoveryError(ServiceError):
    """Snapshot/WAL recovery found inconsistent or incompatible state."""


class BenchError(ReproError):
    """Base class for benchmark-harness errors.

    Raised when a benchmark script violates the harness contract
    (missing ``run`` entrypoint, bad config key, malformed payload), a
    result document fails schema validation, or a comparison is asked
    for files that do not exist.
    """
