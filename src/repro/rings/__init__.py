"""Collusion-ring detection over a queryable suspect graph.

The pair detectors (Sections IV-B/C) convict *pairs* — the C5 common
case.  This package lifts their evidence into group-level detection:

* :mod:`repro.rings.graph` — the :class:`SuspectGraph` substrate:
  nodes are peers with their period counters, edges are candidate
  boosting relationships admitted down to a configurable fraction of
  the pair frequency threshold, with half-verdict screening marks and
  Formula (2) band scores.
* :mod:`repro.rings.detect` — :class:`RingDetector`: the mutual-pair
  baseline (exactly the batch pair verdicts) plus a peeling
  dense-subgraph miner that accepts groups by internal vs. external
  rating mass, catching rings whose individual edges were diluted
  below the pair thresholds.
"""

from repro.rings.detect import RingConfig, RingDetector
from repro.rings.graph import SuspectEdge, SuspectGraph

__all__ = [
    "RingConfig",
    "RingDetector",
    "SuspectEdge",
    "SuspectGraph",
]
