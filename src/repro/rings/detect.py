"""Ring detection over the suspect graph: components + dense-subgraph miner.

Two detectors run over one :class:`~repro.rings.graph.SuspectGraph`
pass, both inside :class:`RingDetector`:

* **Pair baseline** — the mutually screened edges *are* the pair
  detector's verdict set (both half-verdict legs present), so they are
  reported verbatim as :class:`~repro.core.model.SuspectedPair`
  entries.  On a pure pair workload this is the whole story, which is
  the no-regression anchor: ring detection must reproduce the batch
  pair detector's suspect set exactly there.
* **Mutual-reinforcement miner** — weakly connected components of the
  candidate edges are *peeled* to dense cores: while a component fails
  the group acceptance test, its weakest member (minimum in-group
  received mass, id as the deterministic tie-break) is removed and the
  remainder re-split into components.  Candidate edges admit
  frequencies down to ``edge_floor * T_N``, so rings whose individual
  pair edges were diluted below the pair threshold (time dilution,
  rating spread) still assemble into components with full group mass.

Group acceptance — the C1–C4 model lifted from pairs to member sets.
A candidate group G (size >= 3) is accepted when:

1. every member is high-reputed (C1, the ``T_R`` gate);
2. every member's in-group received mass ``F_i`` is at least
   ``member_floor * T_N`` (C4 with the same dilution relaxation as
   edge admission);
3. every member's summation reputation sits inside the Formula (2)
   band for ``(N_i, F_i)`` — the paper's screen with the *group's*
   combined boosting mass as F, exactly the multi-booster aggregation
   the optimized detector already performs for pairs;
4. the group's internal positive fraction is ``>= T_a`` (C3) and its
   pooled external positive fraction is ``< T_b`` (C2), with outside
   evidence required unless ``require_external_evidence`` is off.

Size-2 groups are accepted *only* when they are mutually screened
pairs — the pair detector stays the single authority on pairs, which
is what makes the pure-pair equivalence exact rather than approximate.
The mutual-reinforcement score of an accepted group is
``internal_fraction * (1 - external_fraction)`` in ``(0, 1]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.formula import formula2_screen
from repro.core.model import (
    DetectionReport,
    PairEvidence,
    SuspectedGroup,
    SuspectedPair,
)
from repro.core.thresholds import DetectionThresholds
from repro.rings.graph import SuspectEdge, SuspectGraph
from repro.util.counters import OpCounter
from repro.util.validation import check_fraction

__all__ = ["RingConfig", "RingDetector"]


@dataclass(frozen=True)
class RingConfig:
    """Tuning knobs of the group miner.

    Attributes
    ----------
    member_floor:
        Fraction of ``T_N`` each member's in-group received mass must
        reach, in ``(0, 1]``.  Mirrors the graph's ``edge_floor``.
    min_internal_fraction:
        Required in-group positive fraction (None: the thresholds'
        ``t_a`` — the C3 bound).
    max_external_fraction:
        Exclusive upper bound on the pooled outside positive fraction
        (None: the thresholds' ``t_b`` — the C2 bound).
    require_external_evidence:
        When true (default), a group with *no* outside ratings at all
        is rejected — no corroboration, same convention as the batch
        group detector's C2 handling.  False accepts boost-only rings
        before the world has rated them (earlier but noisier).
    """

    member_floor: float = 0.5
    min_internal_fraction: Optional[float] = None
    max_external_fraction: Optional[float] = None
    require_external_evidence: bool = True

    def __post_init__(self) -> None:
        check_fraction("member_floor", self.member_floor,
                       inclusive_low=False)
        if self.min_internal_fraction is not None:
            check_fraction("min_internal_fraction",
                           self.min_internal_fraction)
        if self.max_external_fraction is not None:
            check_fraction("max_external_fraction",
                           self.max_external_fraction)


@dataclass(frozen=True)
class _GroupStats:
    """Pooled and per-member mass of one candidate member set."""

    internal_eff: int
    internal_pos: int
    external_eff: int
    external_pos: int
    received_eff: Dict[int, int]      # F_i: in-group received mass
    received_pos: Dict[int, int]


class RingDetector:
    """Collusion-ring detection over a :class:`SuspectGraph`.

    Emits a :class:`~repro.core.model.DetectionReport` whose ``pairs``
    are the mutually screened pair verdicts (evidence included) and
    whose ``groups`` are the accepted collectives — every mutual pair
    appears in ``groups`` too (as its own ``kind="pair"`` entry when
    not absorbed by a larger accepted ring), so ``groups`` alone is a
    complete verdict set.
    """

    name = "rings"

    def __init__(
        self,
        thresholds: Optional[DetectionThresholds] = None,
        config: Optional[RingConfig] = None,
        ops: Optional[OpCounter] = None,
    ) -> None:
        self.thresholds = (thresholds if thresholds is not None
                           else DetectionThresholds())
        self.config = config if config is not None else RingConfig()
        self.ops = ops if ops is not None else OpCounter()

    # ------------------------------------------------------------------
    def detect(self, graph: SuspectGraph) -> DetectionReport:
        """One ring-detection pass over an assembled suspect graph."""
        report = DetectionReport(
            method=self.name,
            examined_nodes=len(graph.nodes()),
        )
        before = self.ops.snapshot()

        mutual = graph.mutual_pairs()
        mutual_set: Set[Tuple[int, int]] = set(mutual)
        for low, high in mutual:
            report.add(SuspectedPair(
                low=low, high=high,
                evidence_low_to_high=self._evidence(graph, low, high),
                evidence_high_to_low=self._evidence(graph, high, low),
            ))

        groups: List[SuspectedGroup] = []
        for component in graph.components():
            groups.extend(self._mine(graph, component, mutual_set))

        # Safety net: a mutual pair whose component peeled it away is
        # still a conviction — the pair detector said so.  Re-add any
        # pair not absorbed by an accepted group.
        covered = [set(g.members) for g in groups]
        for low, high in mutual:
            if not any({low, high} <= members for members in covered):
                stats = self._stats(graph, [low, high])
                groups.append(self._as_group((low, high), "pair", stats))

        groups.sort(key=lambda g: (-g.size, g.members))
        for group in groups:
            report.add_group(group)
        report.operations = self.ops.diff(before)
        return report

    # ------------------------------------------------------------------
    # mining
    # ------------------------------------------------------------------
    def _mine(
        self,
        graph: SuspectGraph,
        members: Sequence[int],
        mutual_set: Set[Tuple[int, int]],
    ) -> List[SuspectedGroup]:
        """Peel one candidate member set down to accepted groups."""
        if len(members) < 2:
            return []
        # Re-split first: peeling can disconnect a set, and pooled
        # stats across disconnected fragments would conflate unrelated
        # groups (two separate pairs are two verdicts, not one ring).
        parts = _induced_components(graph, members)
        if len(parts) > 1:
            out: List[SuspectedGroup] = []
            for part in parts:
                out.extend(self._mine(graph, part, mutual_set))
            return out

        if len(members) == 2:
            low, high = sorted(members)
            if (low, high) in mutual_set:
                self.ops.add("group_eval", 1)
                stats = self._stats(graph, members)
                return [self._as_group((low, high), "pair", stats)]
            return []

        self.ops.add("group_eval", 1)
        stats = self._stats(graph, members)
        if self._accept(graph, members, stats):
            return [self._as_group(tuple(sorted(members)), "ring", stats)]
        weakest = min(members,
                      key=lambda m: (stats.received_eff.get(m, 0), m))
        self.ops.add("peel", 1)
        return self._mine(graph, [m for m in members if m != weakest],
                          mutual_set)

    def _stats(self, graph: SuspectGraph,
               members: Sequence[int]) -> _GroupStats:
        """Internal/external rating mass of one member set."""
        inside = set(members)
        internal_eff = internal_pos = 0
        received_eff: Dict[int, int] = {m: 0 for m in members}
        received_pos: Dict[int, int] = {m: 0 for m in members}
        for member in members:
            for edge in self._in_edges(graph, member):
                self.ops.add("edge_scan", 1)
                if edge.rater in inside:
                    internal_eff += edge.frequency
                    internal_pos += edge.positive
                    received_eff[member] += edge.frequency
                    received_pos[member] += edge.positive
        external_eff = external_pos = 0
        for member in members:
            external_eff += int(graph.node_eff[member]) - received_eff[member]
            external_pos += int(graph.node_pos[member]) - received_pos[member]
        return _GroupStats(
            internal_eff=internal_eff, internal_pos=internal_pos,
            external_eff=external_eff, external_pos=external_pos,
            received_eff=received_eff, received_pos=received_pos,
        )

    def _accept(self, graph: SuspectGraph, members: Sequence[int],
                stats: _GroupStats) -> bool:
        """The group acceptance test (C1-C4 lifted to member sets)."""
        th = self.thresholds
        cfg = self.config
        min_internal = (cfg.min_internal_fraction
                        if cfg.min_internal_fraction is not None else th.t_a)
        max_external = (cfg.max_external_fraction
                        if cfg.max_external_fraction is not None else th.t_b)
        if stats.internal_eff <= 0:
            return False
        floor = cfg.member_floor * th.t_n
        for member in members:
            if not bool(graph.high[member]):                   # C1
                return False
            mass = stats.received_eff[member]
            if mass < floor:                                   # C4 (relaxed)
                return False
            n_total = float(graph.node_eff[member])
            reputation = float(
                2 * int(graph.node_pos[member]) - int(graph.node_eff[member])
            )
            self.ops.add("formula_eval", 1)
            if not bool(formula2_screen(reputation, n_total, float(mass),
                                        th.t_a, th.t_b)):      # Formula (2)
                return False
        if stats.internal_pos < min_internal * stats.internal_eff:   # C3
            return False
        if stats.external_eff <= 0:                            # C2 evidence
            return not cfg.require_external_evidence
        return stats.external_pos < max_external * stats.external_eff  # C2

    # ------------------------------------------------------------------
    # assembly helpers
    # ------------------------------------------------------------------
    def _as_group(self, members: Tuple[int, ...], kind: str,
                  stats: _GroupStats) -> SuspectedGroup:
        internal = (stats.internal_pos / stats.internal_eff
                    if stats.internal_eff > 0 else 0.0)
        external = (stats.external_pos / stats.external_eff
                    if stats.external_eff > 0 else 0.0)
        return SuspectedGroup(
            members=members,
            kind=kind,
            internal_frequency=stats.internal_eff,
            internal_positive=stats.internal_pos,
            external_frequency=stats.external_eff,
            external_positive=stats.external_pos,
            score=internal * (1.0 - external),
        )

    @staticmethod
    def _in_edges(graph: SuspectGraph, target: int) -> List[SuspectEdge]:
        return [e for e in graph.edges() if e.target == target]

    def _evidence(self, graph: SuspectGraph, rater: int,
                  target: int) -> PairEvidence:
        """Table-I audit quantities for one screened direction."""
        edge = graph.edge(rater, target)
        eff = edge.frequency if edge is not None else 0
        pos = edge.positive if edge is not None else 0
        others_total = int(graph.node_eff[target]) - eff
        others_positive = int(graph.node_pos[target]) - pos
        return PairEvidence(
            rater=rater,
            target=target,
            frequency=eff,
            positive=pos,
            others_total=others_total,
            others_positive=others_positive,
            a=pos / eff if eff > 0 else float("nan"),
            b=(others_positive / others_total
               if others_total > 0 else float("nan")),
            target_reputation=float(graph.reputation[target]),
        )


def _induced_components(graph: SuspectGraph,
                        members: Sequence[int]) -> List[List[int]]:
    """Connected components of the subgraph induced by ``members``."""
    inside = set(members)
    adjacency: Dict[int, Set[int]] = {m: set() for m in members}
    for edge in graph.edges():
        if edge.rater in inside and edge.target in inside:
            adjacency[edge.rater].add(edge.target)
            adjacency[edge.target].add(edge.rater)
    seen: Set[int] = set()
    components: List[List[int]] = []
    for start in sorted(inside):
        if start in seen:
            continue
        stack = [start]
        seen.add(start)
        component: List[int] = []
        while stack:
            node = stack.pop()
            component.append(node)
            for neighbour in adjacency[node]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
        components.append(sorted(component))
    return components
