"""The suspect graph: pair-level evidence lifted into a queryable graph.

The pair detectors (Sections IV-B/C) emit *pair* verdicts: a joined
symmetric Formula (2) screen per ``{i, j}``.  Collusion collectives
larger than two — rings, hubs, rating-spread cliques — leave the same
statistical footprint (C1–C4) spread across more edges, each of which
may individually sit *below* the pair thresholds.  The
:class:`SuspectGraph` is the shared substrate the ring detectors mine:

* **nodes** are peers, annotated with their period counters
  (``N_eff``, ``N+``) and the reputation gate value;
* **edges** are *candidate* boosting relationships ``rater -> target``:
  both endpoints high-reputed (C1), positive fraction ``>= T_a`` (C3),
  and frequency at least ``edge_floor * T_N`` — a configurable
  *relaxation* of the pair frequency threshold (C4) so that edges
  diluted below ``T_N`` by evasion still enter the graph;
* an edge is **screened** when it is one leg of the pair detector's
  half-verdict set — the graph is built *from* those half-verdicts, so
  the set of mutually screened edges reproduces the batch pair verdict
  set exactly (the no-regression anchor the property tests pin);
* every edge carries a **band score** in ``[0, 1]``: how deep the
  target's summation reputation sits inside the Formula (2) band
  ``[2 T_a F - N,  2 T_b (N - F) + 2 F - N)`` for this edge's pair
  mass — 0 outside the band, approaching 1 at the all-boosted lower
  bound.

Construction paths: :meth:`SuspectGraph.build` consumes half-verdicts
plus raw pair counters (the shard-state shape the service exports);
:meth:`SuspectGraph.from_matrix` derives both from a period
:class:`~repro.ratings.matrix.RatingMatrix` by streaming its entries
through an :class:`~repro.core.online.OnlineCollusionDetector` —
backend-agnostic (COO sweep, no dense plane) and provably equal to the
batch screen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np
import numpy.typing as npt

from repro.core.formula import formula2_bounds
from repro.core.model import HalfVerdict
from repro.core.online import OnlineCollusionDetector
from repro.core.thresholds import DetectionThresholds
from repro.errors import DetectionError
from repro.ratings.matrix import RatingMatrix
from repro.util.counters import OpCounter
from repro.util.validation import check_fraction

__all__ = ["SuspectEdge", "SuspectGraph"]

#: ``(target, rater, effective, positive)`` — the exported pair-counter
#: shape (matches ``OnlineCollusionDetector.export_state`` ordering).
PairCount = Tuple[int, int, int, int]


@dataclass(frozen=True)
class SuspectEdge:
    """One directed candidate boosting relationship ``rater -> target``.

    ``screened`` marks the edge as a pair-detector half-verdict leg
    (target's Formula (2) screen implicates the rater); ``band_score``
    is the target's depth inside the Formula (2) band for this edge's
    pair mass (0 when outside the band).
    """

    rater: int
    target: int
    frequency: int
    positive: int
    screened: bool
    band_score: float

    @property
    def positive_fraction(self) -> float:
        """The rater's positive fraction toward the target (Table I ``a``)."""
        if self.frequency <= 0:
            return float("nan")
        return self.positive / self.frequency

    def to_dict(self) -> Dict[str, object]:
        """JSON document for the ``/collusion-graph`` endpoint."""
        return {
            "rater": self.rater,
            "target": self.target,
            "frequency": self.frequency,
            "positive": self.positive,
            "screened": self.screened,
            "band_score": self.band_score,
        }


class SuspectGraph:
    """Weighted directed graph of suspected boosting relationships.

    Parameters
    ----------
    n:
        Universe size.
    thresholds:
        The detection threshold bundle; ``t_n`` (scaled by
        ``edge_floor``) drives candidate-edge admission.
    node_eff, node_pos:
        Per-node received effective / positive counters for the period.
    reputation:
        The reputation gate vector (the service's global period gate or
        the matrix summation reputation) — drives the ``T_R`` highness
        mask, exactly like the pair detectors' C1 gate.
    edge_floor:
        Fraction of ``T_N`` a candidate edge's frequency must reach,
        in ``(0, 1]``.  1.0 admits only pair-threshold edges; the 0.5
        default lets the miners see edges diluted to half the pair
        threshold.
    """

    def __init__(
        self,
        n: int,
        thresholds: DetectionThresholds,
        node_eff: npt.NDArray[np.int64],
        node_pos: npt.NDArray[np.int64],
        reputation: npt.NDArray[np.float64],
        edge_floor: float = 0.5,
    ) -> None:
        check_fraction("edge_floor", edge_floor, inclusive_low=False)
        if node_eff.shape != (n,) or node_pos.shape != (n,):
            raise DetectionError(
                f"node counter arrays must have shape ({n},), got "
                f"{node_eff.shape} / {node_pos.shape}"
            )
        if reputation.shape != (n,):
            raise DetectionError(
                f"reputation vector has shape {reputation.shape}, expected ({n},)"
            )
        self.n = n
        self.thresholds = thresholds
        self.edge_floor = edge_floor
        self.node_eff = node_eff
        self.node_pos = node_pos
        self.reputation = reputation
        self.high: npt.NDArray[np.bool_] = reputation >= thresholds.t_r
        self._edges: Dict[Tuple[int, int], SuspectEdge] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        n: int,
        thresholds: DetectionThresholds,
        halves: Sequence[HalfVerdict],
        pair_counts: Iterable[PairCount],
        reputation: npt.NDArray[np.float64],
        node_eff: npt.NDArray[np.int64],
        node_pos: npt.NDArray[np.int64],
        edge_floor: float = 0.5,
        include: Optional[npt.NDArray[np.int64]] = None,
        ops: Optional[OpCounter] = None,
    ) -> "SuspectGraph":
        """Assemble the graph from half-verdicts and raw pair counters.

        ``pair_counts`` supplies every stored ``(target, rater, eff,
        pos)`` counter of the period (the service's exported shard
        state or a matrix entry sweep); candidate edges are selected
        from it, then the legs named by ``halves`` are marked screened.
        A screened leg always satisfies the candidate criteria (its
        frequency is ``>= T_N >= edge_floor * T_N`` and its positive
        fraction ``>= T_a``), so marking never adds edges.
        """
        counters = ops if ops is not None else OpCounter()
        graph = cls(n, thresholds, node_eff, node_pos, reputation,
                    edge_floor=edge_floor)
        if include is not None and include.size:
            if int(include.min()) < 0 or int(include.max()) >= n:
                raise DetectionError(
                    f"include ids outside universe of size {n}"
                )
            graph.high[include] = True
        th = thresholds
        floor = edge_floor * th.t_n
        screened_keys: Set[Tuple[int, int]] = {
            (h.rater, h.target) for h in halves
        }
        # The period summation reputation the Formula (2) screen runs
        # against — derived from the node counters, exactly as the
        # online detector derives it.
        r_sum = (2 * node_pos - node_eff).astype(float)
        for target, rater, eff, pos in pair_counts:
            counters.add("edge_eval", 1)
            if rater == target or eff <= 0 or eff < floor:
                continue
            if pos < th.t_a * eff:
                continue
            if not (graph.high[target] and graph.high[rater]):
                continue
            lower, upper = formula2_bounds(
                float(node_eff[target]), float(eff), th.t_a, th.t_b
            )
            graph._edges[(rater, target)] = SuspectEdge(
                rater=rater,
                target=target,
                frequency=eff,
                positive=pos,
                screened=(rater, target) in screened_keys,
                band_score=_band_score(float(r_sum[target]),
                                       float(lower), float(upper)),
            )
        return graph

    @classmethod
    def from_matrix(
        cls,
        matrix: RatingMatrix,
        thresholds: Optional[DetectionThresholds] = None,
        reputation: Optional[npt.ArrayLike] = None,
        include: Optional[npt.ArrayLike] = None,
        edge_floor: float = 0.5,
        multi_booster_exclusion: bool = True,
        ops: Optional[OpCounter] = None,
    ) -> "SuspectGraph":
        """Build the graph for one period matrix (batch entry point).

        The half-verdict set is derived by streaming the matrix's COO
        entries through an :class:`OnlineCollusionDetector` (whose
        screen is property-tested equal to the batch optimized
        detector), so the mutually screened edges equal the batch pair
        verdicts for the same ``(matrix, reputation)`` inputs.
        Backend-agnostic: only ``entries()`` sweeps, no dense planes.
        """
        th = thresholds if thresholds is not None else DetectionThresholds()
        counters = ops if ops is not None else OpCounter()
        detector = OnlineCollusionDetector(
            matrix.n, th, ops=counters,
            multi_booster_exclusion=multi_booster_exclusion,
        )
        targets, raters, eff, pos = matrix.entries(effective=True)
        for t, r, cnt, p in zip(targets.tolist(), raters.tolist(),
                                eff.tolist(), pos.tolist()):
            if p:
                detector.observe(r, t, 1, count=p)
            if cnt - p:
                detector.observe(r, t, -1, count=cnt - p)
        if reputation is None:
            gate = matrix.reputation_sum().astype(float)
        else:
            gate = np.asarray(reputation, dtype=float)
            if gate.shape != (matrix.n,):
                raise DetectionError(
                    f"reputation vector has shape {gate.shape}, "
                    f"expected ({matrix.n},)"
                )
        include_ids = (None if include is None
                       else np.asarray(include, dtype=np.int64))
        halves = detector.period_candidates(reputation=gate,
                                            include=include_ids)
        graph = cls.build(
            matrix.n, th, halves,
            zip(targets.tolist(), raters.tolist(), eff.tolist(), pos.tolist()),
            gate,
            matrix.received_effective().astype(np.int64),
            matrix.received_positive().astype(np.int64),
            edge_floor=edge_floor, include=include_ids, ops=counters,
        )
        return graph

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def edge(self, rater: int, target: int) -> Optional[SuspectEdge]:
        """The candidate edge ``rater -> target``, or None."""
        return self._edges.get((rater, target))

    def edges(self) -> List[SuspectEdge]:
        """All candidate edges, sorted by ``(rater, target)``."""
        return [self._edges[key] for key in sorted(self._edges)]

    def nodes(self) -> List[int]:
        """Sorted ids of nodes incident to at least one candidate edge."""
        out: Set[int] = set()
        for rater, target in self._edges:
            out.add(rater)
            out.add(target)
        return sorted(out)

    def mutual_pairs(self) -> List[Tuple[int, int]]:
        """``(low, high)`` pairs whose *both* directed legs are screened.

        This is exactly the half-verdict join
        (:func:`repro.core.model.join_half_verdicts`): the batch pair
        detector's verdict set, recovered from the graph.
        """
        screened = {key for key, e in self._edges.items() if e.screened}
        return sorted(
            (rater, target)
            for rater, target in screened
            if rater < target and (target, rater) in screened
        )

    def adjacency(self) -> Dict[int, Set[int]]:
        """Undirected neighbour map over the candidate edges."""
        out: Dict[int, Set[int]] = {}
        for rater, target in self._edges:
            out.setdefault(rater, set()).add(target)
            out.setdefault(target, set()).add(rater)
        return out

    def components(self) -> List[List[int]]:
        """Weakly connected components (sorted ids, sorted by min id)."""
        adjacency = self.adjacency()
        seen: Set[int] = set()
        components: List[List[int]] = []
        for start in sorted(adjacency):
            if start in seen:
                continue
            stack = [start]
            component: List[int] = []
            seen.add(start)
            while stack:
                node = stack.pop()
                component.append(node)
                for neighbour in adjacency[node]:
                    if neighbour not in seen:
                        seen.add(neighbour)
                        stack.append(neighbour)
            components.append(sorted(component))
        return components

    def to_dict(self) -> Dict[str, object]:
        """JSON document: involved nodes with counters, plus all edges."""
        involved = self.nodes()
        return {
            "n": self.n,
            "edge_floor": self.edge_floor,
            "nodes": [
                {
                    "id": node,
                    "effective": int(self.node_eff[node]),
                    "positive": int(self.node_pos[node]),
                    "reputation": float(self.reputation[node]),
                    "high": bool(self.high[node]),
                }
                for node in involved
            ],
            "edges": [edge.to_dict() for edge in self.edges()],
            "mutual_pairs": [list(pair) for pair in self.mutual_pairs()],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SuspectGraph(n={self.n}, edges={self.num_edges}, "
            f"nodes={len(self.nodes())}, floor={self.edge_floor})"
        )


def _band_score(reputation: float, lower: float, upper: float) -> float:
    """Depth of ``reputation`` inside the Formula (2) band, in [0, 1].

    0 outside ``[lower, upper)``; inside, 1 at the lower bound (the
    all-boosted extreme ``a = T_a, b = 0``) falling linearly to 0 at
    the upper bound.  A degenerate band (``upper <= lower``) scores 0.
    """
    if upper <= lower or not lower <= reputation < upper:
        return 0.0
    return (upper - reputation) / (upper - lower)
