"""The committed findings baseline: grandfather old, gate new.

``.reprolint-baseline.json`` (repository root) records the fingerprint
of every finding that existed when a rule was introduced.  CI runs
``repro lint --fail-on-new``: findings whose fingerprint appears in the
baseline are reported but do not fail the build; any finding *not* in
the baseline does.  The file is committed so the debt is visible,
reviewed, and can only shrink — ``--write-baseline`` regenerates it,
and stale entries (fixed findings) are reported so they can be pruned.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Union

from repro.analysis.findings import Finding
from repro.errors import ReproError

__all__ = ["Baseline", "BaselineError", "DEFAULT_BASELINE_NAME", "split_by_baseline"]

#: Conventional filename at the repository root.
DEFAULT_BASELINE_NAME = ".reprolint-baseline.json"

BASELINE_VERSION = 1


class BaselineError(ReproError):
    """A baseline file is missing, unreadable or malformed."""


@dataclass
class Baseline:
    """An accepted-findings set keyed by fingerprint."""

    entries: List[Dict[str, object]] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def fingerprints(self) -> Set[str]:
        return {str(e["fingerprint"]) for e in self.entries}

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, finding: Finding) -> bool:
        return finding.fingerprint in self.fingerprints

    # ------------------------------------------------------------------
    @classmethod
    def from_findings(cls, findings: List[Finding]) -> "Baseline":
        entries = [f.to_dict() for f in sorted(
            findings, key=lambda f: (f.path, f.line, f.rule)
        )]
        return cls(entries=entries)

    @classmethod
    def load(cls, path: Union[str, pathlib.Path]) -> "Baseline":
        path = pathlib.Path(path)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from exc
        if not isinstance(doc, dict) or doc.get("tool") != "reprolint":
            raise BaselineError(f"{path} is not a reprolint baseline document")
        if doc.get("version") != BASELINE_VERSION:
            raise BaselineError(
                f"baseline {path} has version {doc.get('version')!r}, "
                f"this build reads version {BASELINE_VERSION}"
            )
        entries = doc.get("findings")
        if not isinstance(entries, list):
            raise BaselineError(f"baseline {path} has no findings list")
        for entry in entries:
            if not isinstance(entry, dict) or "fingerprint" not in entry:
                raise BaselineError(
                    f"baseline {path} entry without fingerprint: {entry!r}"
                )
        return cls(entries=entries)

    def save(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        path = pathlib.Path(path)
        doc = {
            "tool": "reprolint",
            "version": BASELINE_VERSION,
            "findings": self.entries,
        }
        # Write-then-rename (REP007): the CI gate reads this file, so a
        # crash mid-write must leave the old baseline intact, not a
        # torn document that fails every subsequent lint.
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        os.replace(tmp, path)
        return path

    def pruned(self, stale: List[Dict[str, object]]) -> "Baseline":
        """A copy without ``stale`` entries (matched by fingerprint).

        The non-stale entries are kept verbatim — pruning never
        re-baselines, it only retires fixed debt.
        """
        dead = {str(e.get("fingerprint")) for e in stale}
        return Baseline(entries=[
            e for e in self.entries if str(e.get("fingerprint")) not in dead
        ])


def split_by_baseline(
    findings: List[Finding], baseline: Optional[Baseline]
) -> "tuple[List[Finding], List[Finding], List[Dict[str, object]]]":
    """Partition findings into ``(new, baselined, stale_entries)``.

    ``stale_entries`` are baseline records whose finding no longer
    occurs — fixed debt that should be pruned from the file (reported,
    never fatal: a stale entry can only make the gate stricter).
    """
    if baseline is None:
        return list(findings), [], []
    known = baseline.fingerprints
    new = [f for f in findings if f.fingerprint not in known]
    old = [f for f in findings if f.fingerprint in known]
    current = {f.fingerprint for f in findings}
    stale = [e for e in baseline.entries
             if str(e["fingerprint"]) not in current]
    return new, old, stale
