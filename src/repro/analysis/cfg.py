"""Per-function control-flow graphs for the dataflow layer.

The graph is statement-granular: every simple statement is its own
node (a degenerate basic block — one statement per block keeps the
transfer functions trivial and the node count small, functions here
run tens of statements, not thousands).  Compound statements
contribute *header* nodes (``test`` for ``if``/``while``/``for``,
``stmt`` for ``with``) plus the nodes of their bodies; ``try`` adds
synthetic ``handlers``/``final`` dispatch nodes.

Exception modelling
-------------------

* A statement "may raise" (default: it contains a call, an ``assert``,
  or *is* a ``raise``) gets an ``exc`` edge to the innermost enclosing
  ``try``'s handler dispatch, chained through any intervening
  ``finally`` blocks, and to the synthetic ``raise`` exit when nothing
  encloses it.  Callers can tighten or widen the predicate via
  ``may_raise=``.
* Handler headers test in order: a ``true`` edge into the handler
  body, a ``false`` edge to the next handler (or onward/outward when
  the exception matches none).  ``except:``, ``except Exception`` and
  ``except BaseException`` are catch-alls with no ``false`` edge.
* ``finally`` blocks are built **once** and receive edges from every
  reason that can enter them (normal completion, exception, return,
  break, continue); their exit frontier fans out to the union of the
  pending continuations.  This over-approximates paths — a normal
  completion appears able to leave via the return continuation — which
  is the conservative direction for every rule built on top.
* ``with`` is an acquisition header plus its body; ``__exit__``
  suppression is not modelled (exceptions in the body propagate).

Edge kinds are about the *source* slot: ``next`` (fall-through),
``true``/``false`` (branch outcomes), ``exc`` (exception flow).  The
synthetic ``raise`` node is the "an exception escaped this function"
exit, distinct from the normal ``exit``.

``dump()`` renders the graph as deterministic text — the golden-test
surface (tests/analysis/test_cfg.py).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "CFGNode",
    "ControlFlowGraph",
    "build_cfg",
    "stmt_may_raise",
    "stmt_exprs",
    "NEXT",
    "TRUE",
    "FALSE",
    "EXC",
]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

NEXT = "next"
TRUE = "true"
FALSE = "false"
EXC = "exc"

ENTRY_NID = 0
EXIT_NID = 1
RAISE_NID = 2

_CATCH_ALL_TYPES = ("Exception", "BaseException")
_LABEL_WIDTH = 60


def _src(node: Optional[ast.AST]) -> str:
    """One-line source text for a node label (never raises)."""
    if node is None:
        return ""
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on our input
        return "<expr>"
    text = " ".join(text.split())
    if len(text) > _LABEL_WIDTH:
        text = text[: _LABEL_WIDTH - 3] + "..."
    return text


def _contains_call(node: ast.AST) -> bool:
    """Does evaluating ``node`` run a call?  Nested defs/lambdas are
    skipped: their bodies execute later, not here."""
    if isinstance(node, ast.Call):
        return True
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.Lambda, ast.ClassDef)):
        return False
    return any(_contains_call(child) for child in ast.iter_child_nodes(node))


def stmt_may_raise(stmt: ast.stmt) -> bool:
    """Default raising predicate: calls, asserts and explicit raises."""
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    return _contains_call(stmt)


def stmt_exprs(stmt: ast.AST) -> List[ast.expr]:
    """The expressions a node's *own* execution evaluates.

    Compound statements evaluate only their headers at their node —
    ``if``/``while`` the test, ``for`` the iterable, ``with`` the
    context expressions; body statements have nodes of their own.
    ``try`` dispatch nodes and nested ``def``/``class`` statements
    evaluate nothing here (their bodies run elsewhere/later).
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, (ast.Try, ast.ExceptHandler, ast.FunctionDef,
                         ast.AsyncFunctionDef, ast.ClassDef)):
        return []
    return [child for child in ast.iter_child_nodes(stmt)
            if isinstance(child, ast.expr)]


@dataclass
class CFGNode:
    """One node: a statement, a branch header, or a synthetic exit."""

    nid: int
    kind: str  # entry|exit|raise|stmt|test|handler|handlers|final
    label: str
    stmt: Optional[ast.AST] = None
    succ: List[Tuple[int, str]] = field(default_factory=list)
    pred: List[Tuple[int, str]] = field(default_factory=list)


@dataclass
class ControlFlowGraph:
    """The built graph; ``entry``/``exit``/``raise`` are nids 0/1/2."""

    fn: FunctionNode
    nodes: List[CFGNode]

    entry_nid: int = ENTRY_NID
    exit_nid: int = EXIT_NID
    raise_nid: int = RAISE_NID

    def node(self, nid: int) -> CFGNode:
        return self.nodes[nid]

    def successors(self, nid: int,
                   kinds: Optional[Sequence[str]] = None) -> List[int]:
        return [dst for dst, kind in self.nodes[nid].succ
                if kinds is None or kind in kinds]

    def predecessors(self, nid: int,
                     kinds: Optional[Sequence[str]] = None) -> List[int]:
        return [src for src, kind in self.nodes[nid].pred
                if kinds is None or kind in kinds]

    def node_of(self, stmt: ast.AST) -> Optional[int]:
        """The nid whose node was created for this AST statement."""
        return self._index.get(id(stmt))

    def dump(self) -> str:
        """Deterministic text rendering (the golden-test surface)."""
        lines = []
        for node in self.nodes:
            head = f"[{node.nid} {node.kind}]"
            if node.label:
                head += f" {node.label}"
            edges = " ".join(f"{kind}->{dst}" for dst, kind in node.succ)
            lines.append(head + (f" :: {edges}" if edges else ""))
        return "\n".join(lines)

    # populated by the builder
    _index: Dict[int, int] = field(default_factory=dict, repr=False)


# Jump-routing frames -------------------------------------------------

@dataclass
class _HandlerFrame:
    dispatch: int


# A pending-jump list collects (src, kind) frontier entries whose
# target is not known yet (loop breaks while the loop is being built).
_Pending = List[Tuple[int, str]]
_ContTarget = Union[int, _Pending]


@dataclass
class _FinallyFrame:
    marker: int
    continuations: List[_ContTarget] = field(default_factory=list)


@dataclass
class _LoopFrame:
    head: int
    breaks: _Pending = field(default_factory=list)


_Frame = Union[_HandlerFrame, _FinallyFrame, _LoopFrame]
_Frontier = List[Tuple[int, str]]


class _Builder:
    def __init__(self, fn: FunctionNode,
                 may_raise: Callable[[ast.stmt], bool]) -> None:
        self.fn = fn
        self.may_raise = may_raise
        self.nodes: List[CFGNode] = []
        self.index: Dict[int, int] = {}
        self._new("entry", "")
        self._new("exit", "")
        self._new("raise", "")
        self.frames: List[_Frame] = []

    # -- graph primitives ---------------------------------------------
    def _new(self, kind: str, label: str,
             stmt: Optional[ast.AST] = None) -> CFGNode:
        node = CFGNode(nid=len(self.nodes), kind=kind, label=label, stmt=stmt)
        self.nodes.append(node)
        if stmt is not None and id(stmt) not in self.index:
            self.index[id(stmt)] = node.nid
        return node

    def _edge(self, src: int, dst: int, kind: str) -> None:
        node = self.nodes[src]
        if (dst, kind) not in node.succ:
            node.succ.append((dst, kind))
            self.nodes[dst].pred.append((src, kind))

    def _connect(self, frontier: _Frontier, dst: int) -> None:
        for src, kind in frontier:
            self._edge(src, dst, kind)

    # -- jump routing through finally chains --------------------------
    def _route(self, frontier: _Frontier, reason: str) -> None:
        """Send ``frontier`` out of the current region for ``reason``
        (exc/return/break/continue), chaining through every enclosing
        ``finally`` the jump must execute on its way."""
        fins: List[_FinallyFrame] = []
        sink: _ContTarget
        sink = RAISE_NID if reason == "exc" else EXIT_NID
        for frame in reversed(self.frames):
            if isinstance(frame, _FinallyFrame):
                fins.append(frame)
            elif isinstance(frame, _HandlerFrame) and reason == "exc":
                sink = frame.dispatch
                break
            elif isinstance(frame, _LoopFrame) and reason in ("break",
                                                              "continue"):
                sink = frame.breaks if reason == "break" else frame.head
                break
        first: _ContTarget = fins[0].marker if fins else sink
        self._connect_target(frontier, first)
        for fin, nxt in zip(fins, fins[1:]):
            self._add_continuation(fin, nxt.marker)
        if fins:
            self._add_continuation(fins[-1], sink)

    def _connect_target(self, frontier: _Frontier,
                        target: _ContTarget) -> None:
        if isinstance(target, list):
            target.extend(frontier)
        else:
            self._connect(frontier, target)

    @staticmethod
    def _add_continuation(fin: _FinallyFrame, target: _ContTarget) -> None:
        for existing in fin.continuations:
            if existing is target or existing == target:
                return
        fin.continuations.append(target)

    # -- statement dispatch -------------------------------------------
    def build(self) -> ControlFlowGraph:
        frontier = self._body(self.fn.body, [(ENTRY_NID, NEXT)])
        self._connect(frontier, EXIT_NID)
        graph = ControlFlowGraph(fn=self.fn, nodes=self.nodes)
        graph._index = self.index
        return graph

    def _body(self, stmts: Sequence[ast.stmt],
              frontier: _Frontier) -> _Frontier:
        for stmt in stmts:
            frontier = self._stmt(stmt, frontier)
        return frontier

    def _stmt(self, stmt: ast.stmt, frontier: _Frontier) -> _Frontier:
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier)
        if isinstance(stmt, (ast.While,)):
            return self._while(stmt, frontier)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier)
        if isinstance(stmt, ast.Return):
            return self._jump(stmt, "return", frontier)
        if isinstance(stmt, ast.Raise):
            return self._raise(stmt, frontier)
        if isinstance(stmt, ast.Break):
            return self._jump(stmt, "break", frontier)
        if isinstance(stmt, ast.Continue):
            return self._jump(stmt, "continue", frontier)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            node = self._new("stmt", f"def {stmt.name}", stmt)
            self._connect(frontier, node.nid)
            return [(node.nid, NEXT)]
        if isinstance(stmt, ast.ClassDef):
            node = self._new("stmt", f"class {stmt.name}", stmt)
            self._connect(frontier, node.nid)
            return [(node.nid, NEXT)]
        return self._simple(stmt, frontier)

    def _simple(self, stmt: ast.stmt, frontier: _Frontier) -> _Frontier:
        node = self._new("stmt", _src(stmt), stmt)
        self._connect(frontier, node.nid)
        if self.may_raise(stmt):
            self._route([(node.nid, EXC)], "exc")
        return [(node.nid, NEXT)]

    def _if(self, stmt: ast.If, frontier: _Frontier) -> _Frontier:
        test = self._new("test", f"if {_src(stmt.test)}", stmt)
        self._connect(frontier, test.nid)
        if _contains_call(stmt.test):
            self._route([(test.nid, EXC)], "exc")
        then_f = self._body(stmt.body, [(test.nid, TRUE)])
        if stmt.orelse:
            else_f = self._body(stmt.orelse, [(test.nid, FALSE)])
        else:
            else_f = [(test.nid, FALSE)]
        return then_f + else_f

    def _while(self, stmt: ast.While, frontier: _Frontier) -> _Frontier:
        test = self._new("test", f"while {_src(stmt.test)}", stmt)
        self._connect(frontier, test.nid)
        if _contains_call(stmt.test):
            self._route([(test.nid, EXC)], "exc")
        loop = _LoopFrame(head=test.nid)
        self.frames.append(loop)
        body_f = self._body(stmt.body, [(test.nid, TRUE)])
        self.frames.pop()
        self._connect(body_f, test.nid)  # back edge
        out: _Frontier = [(test.nid, FALSE)]
        if stmt.orelse:  # loop-else: runs on exhaustion, skipped by break
            out = self._body(stmt.orelse, out)
        return out + loop.breaks

    def _for(self, stmt: Union[ast.For, ast.AsyncFor],
             frontier: _Frontier) -> _Frontier:
        label = f"for {_src(stmt.target)} in {_src(stmt.iter)}"
        test = self._new("test", label, stmt)
        self._connect(frontier, test.nid)
        if _contains_call(stmt.iter):
            self._route([(test.nid, EXC)], "exc")
        loop = _LoopFrame(head=test.nid)
        self.frames.append(loop)
        body_f = self._body(stmt.body, [(test.nid, TRUE)])
        self.frames.pop()
        self._connect(body_f, test.nid)
        out: _Frontier = [(test.nid, FALSE)]
        if stmt.orelse:
            out = self._body(stmt.orelse, out)
        return out + loop.breaks

    def _with(self, stmt: Union[ast.With, ast.AsyncWith],
              frontier: _Frontier) -> _Frontier:
        items = ", ".join(
            _src(item.context_expr)
            + (f" as {_src(item.optional_vars)}" if item.optional_vars else "")
            for item in stmt.items
        )
        node = self._new("stmt", f"with {items}", stmt)
        self._connect(frontier, node.nid)
        if any(_contains_call(item.context_expr) for item in stmt.items):
            self._route([(node.nid, EXC)], "exc")
        return self._body(stmt.body, [(node.nid, NEXT)])

    def _try(self, stmt: ast.Try, frontier: _Frontier) -> _Frontier:
        fin_frame: Optional[_FinallyFrame] = None
        if stmt.finalbody:
            marker = self._new("final", "<finally>", stmt)
            fin_frame = _FinallyFrame(marker=marker.nid)
            self.frames.append(fin_frame)
        dispatch: Optional[CFGNode] = None
        if stmt.handlers:
            dispatch = self._new("handlers", "<except>", stmt)
            self.frames.append(_HandlerFrame(dispatch=dispatch.nid))
        body_f = self._body(stmt.body, frontier)
        if stmt.handlers:
            self.frames.pop()  # handlers do not cover else/handler bodies
            if stmt.orelse:
                body_f = self._body(stmt.orelse, body_f)
            assert dispatch is not None
            pending: _Frontier = [(dispatch.nid, EXC)]
            for handler in stmt.handlers:
                label = (f"except {_src(handler.type)}" if handler.type
                         else "except")
                h = self._new("handler", label, handler)
                self._connect(pending, h.nid)
                body_f += self._body(handler.body, [(h.nid, TRUE)])
                if handler.type is None or (
                    isinstance(handler.type, ast.Name)
                    and handler.type.id in _CATCH_ALL_TYPES
                ):
                    pending = []
                    break
                pending = [(h.nid, FALSE)]
            if pending:  # matched no handler: continue propagating
                self._route(pending, "exc")
        if stmt.finalbody:
            assert fin_frame is not None
            self.frames.pop()
            self._connect(body_f, fin_frame.marker)
            fin_f = self._body(stmt.finalbody,
                               [(fin_frame.marker, NEXT)])
            for target in fin_frame.continuations:
                self._connect_target(fin_f, target)
            body_f = fin_f
        return body_f

    def _jump(self, stmt: ast.stmt, reason: str,
              frontier: _Frontier) -> _Frontier:
        if isinstance(stmt, ast.Return):
            label = f"return {_src(stmt.value)}" if stmt.value else "return"
        else:
            label = reason
        node = self._new("stmt", label, stmt)
        self._connect(frontier, node.nid)
        if self.may_raise(stmt):
            self._route([(node.nid, EXC)], "exc")
        self._route([(node.nid, NEXT)], reason)
        return []

    def _raise(self, stmt: ast.Raise, frontier: _Frontier) -> _Frontier:
        node = self._new("stmt", _src(stmt), stmt)
        self._connect(frontier, node.nid)
        self._route([(node.nid, EXC)], "exc")
        return []


def build_cfg(fn: FunctionNode,
              may_raise: Callable[[ast.stmt], bool] = stmt_may_raise,
              ) -> ControlFlowGraph:
    """Build the control-flow graph of one function definition."""
    return _Builder(fn, may_raise).build()
