"""Rule registry and the per-file context rules visit.

A *rule* is a small AST pass with metadata: an id (``REP001`` …), the
invariant it protects, a default severity, and a scope — which files
under ``src/repro`` it applies to.  Rules register themselves via
:func:`register` at import time; :func:`all_rules` returns fresh
instances so engine runs never share visitor state.

Scoping uses the *module path* — the file's path relative to the
``repro`` package root (``core/optimized.py``,
``service/coordinator.py``).  Tests lint fixture sources under a
*virtual* module path to exercise scope behaviour without placing
fixtures inside the package.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List, Sequence, Type

from repro.analysis.cfg import ControlFlowGraph, build_cfg
from repro.analysis.findings import Finding, Severity
from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.callgraph import ProgramContext

__all__ = ["FileContext", "Rule", "register", "all_rules", "rule_index"]


class FileContext:
    """Everything a rule may inspect about one source file."""

    def __init__(self, module_path: str, source: str, display_path: str = ""):
        self.module_path = module_path          # posix, relative to repro/
        self.display_path = display_path or module_path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source)
        self._cfgs: Dict[int, ControlFlowGraph] = {}

    def cfg(self, fn: ast.AST) -> ControlFlowGraph:
        """The function's control-flow graph, built once per file so
        every dataflow rule visiting it shares the same graph."""
        assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
        key = id(fn)
        if key not in self._cfgs:
            self._cfgs[key] = build_cfg(fn)
        return self._cfgs[key]

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(self, rule: "Rule", node: ast.AST, message: str,
                severity: str = "") -> Finding:
        """Build a finding anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule.rule_id,
            severity=severity or rule.severity,
            path=self.display_path,
            line=line,
            col=col,
            message=message,
            line_text=self.line_text(line),
        )


class Rule:
    """Base class for reprolint rules.

    Class attributes
    ----------------
    rule_id / title / severity:
        Identity and default severity of emitted findings.
    rationale:
        The invariant the rule protects — shown by ``repro lint
        --explain`` and quoted in docs/STATIC_ANALYSIS.md.
    scope:
        Module-path prefixes the rule applies to (empty: everywhere
        under ``repro/``).
    exclude:
        Exact module paths exempt from the rule (the facade modules a
        purity rule exists to protect, designated writer modules …).
    """

    rule_id: str = ""
    title: str = ""
    severity: str = Severity.WARNING
    rationale: str = ""
    scope: Sequence[str] = ()
    exclude: Sequence[str] = ()
    #: Whole-program rules run once per lint over the linked call graph
    #: (:class:`repro.analysis.callgraph.ProgramContext`) instead of
    #: once per file; ``check`` is never called on them.
    whole_program: bool = False

    def applies_to(self, module_path: str) -> bool:
        if module_path in self.exclude:
            return False
        if not self.scope:
            return True
        return any(module_path.startswith(prefix) for prefix in self.scope)

    def check(self, ctx: FileContext) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError

    def check_program(self, program: "ProgramContext") -> Iterator[Finding]:  # pragma: no cover
        """Cross-file pass for ``whole_program`` rules."""
        raise NotImplementedError

    def run(self, ctx: FileContext) -> List[Finding]:
        if not self.applies_to(ctx.module_path):
            return []
        return list(self.check(ctx))


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    rule_id = rule_cls.rule_id
    if not rule_id:
        raise ReproError(f"rule {rule_cls.__name__} has no rule_id")
    if rule_id in _REGISTRY and _REGISTRY[rule_id] is not rule_cls:
        raise ReproError(f"duplicate rule id {rule_id}")
    _REGISTRY[rule_id] = rule_cls
    return rule_cls


def _load_rules() -> None:
    # Importing the package registers every bundled rule exactly once.
    from repro.analysis import rules  # noqa: F401

    assert _REGISTRY, "rule package imported but nothing registered"


def rule_index() -> Dict[str, Type[Rule]]:
    """Registered rule classes by id (loads the bundled rules)."""
    _load_rules()
    return dict(_REGISTRY)


def all_rules(only: Sequence[str] = ()) -> List[Rule]:
    """Fresh instances of the registered rules, sorted by id.

    ``only`` restricts to the named ids; unknown ids raise so a typo in
    ``--rules`` cannot silently lint nothing.
    """
    index = rule_index()
    if only:
        unknown = sorted(set(only) - set(index))
        if unknown:
            raise ReproError(
                f"unknown rule id(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(index))})"
            )
        chosen: Callable[[str], bool] = lambda rid: rid in set(only)  # noqa: E731
    else:
        chosen = lambda _rid: True  # noqa: E731
    return [cls() for rid, cls in sorted(index.items()) if chosen(rid)]
