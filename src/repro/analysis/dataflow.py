"""Dataflow solvers over the per-function CFG (analysis/cfg.py).

Three layers, smallest first:

* :func:`solve` — a generic worklist fixpoint: caller supplies the
  transfer function and the (union) join; facts are frozensets so
  equality is structural and termination is the usual
  finite-lattice argument.
* :func:`reaching_definitions` — the classic forward may-analysis;
  used by tests and as the template for writing new analyses
  (docs/STATIC_ANALYSIS.md).
* :class:`TaintAnalysis` — a forward may-taint lattice seeded from
  configurable *source chains* (attribute paths like ``self.path``)
  and cleansed by configurable *sanitizer* callables.  REP010 is a
  thin rule over it; the spec lives on the rule so the mechanics stay
  policy-free here.

``ANALYSIS_VERSION`` stamps the whole dataflow layer (cfg + solvers +
the rules built on them) into the engine's cache signature: bump it
whenever a change here could alter findings, so stale per-file cache
entries are discarded (docs/STATIC_ANALYSIS.md, "Caching").
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.analysis.cfg import ControlFlowGraph

__all__ = [
    "ANALYSIS_VERSION",
    "solve",
    "reaching_definitions",
    "closure",
    "TaintSpec",
    "TaintAnalysis",
]

#: Cache stamp for the dataflow layer; see the engine's rules signature.
ANALYSIS_VERSION = 1

Fact = FrozenSet
Transfer = Callable[[int, Fact], Fact]


def solve(
    cfg: ControlFlowGraph,
    transfer: Transfer,
    init: Fact,
    direction: str = "forward",
    edge_kinds: Optional[Tuple[str, ...]] = None,
) -> Dict[int, Fact]:
    """Worklist fixpoint; returns each node's *input* fact.

    ``transfer(nid, fact)`` maps a node's input fact to its output;
    the join is set union (may-analyses — every rule here asks "can
    this happen on *some* path").  ``direction`` is ``forward`` or
    ``backward``; ``edge_kinds`` restricts which edges propagate
    (default: all, the conservative choice).
    """
    if direction == "forward":
        start = cfg.entry_nid

        def flow_in(nid: int) -> List[int]:
            return cfg.predecessors(nid, edge_kinds)

        def flow_out(nid: int) -> List[int]:
            return cfg.successors(nid, edge_kinds)
    elif direction == "backward":
        start = cfg.exit_nid

        def flow_in(nid: int) -> List[int]:
            return cfg.successors(nid, edge_kinds)

        def flow_out(nid: int) -> List[int]:
            return cfg.predecessors(nid, edge_kinds)
    else:
        raise ValueError(f"unknown direction {direction!r}")

    empty: Fact = frozenset()
    in_facts: Dict[int, Fact] = {node.nid: empty for node in cfg.nodes}
    in_facts[start] = init
    out_facts: Dict[int, Fact] = {}
    work: List[int] = [node.nid for node in cfg.nodes]
    while work:
        nid = work.pop()
        incoming = [out_facts[p] for p in flow_in(nid) if p in out_facts]
        if nid == start:
            incoming.append(init)
        merged: Fact = frozenset().union(*incoming) if incoming else empty
        in_facts[nid] = merged
        produced = transfer(nid, merged)
        if out_facts.get(nid) != produced:
            out_facts[nid] = produced
            for succ in flow_out(nid):
                if succ not in work:
                    work.append(succ)
    return in_facts


def closure(starts: Iterable[int],
            neighbors: Callable[[int], Iterable[int]]) -> Set[int]:
    """Transitive closure of ``starts`` under ``neighbors`` (inclusive).

    The reachability primitive behind the path-sensitive rules:
    "is some mutation already applied here" is a closure over
    successor edges from the mutation nodes, "does a mutation still
    lie ahead" a closure over predecessor edges.
    """
    seen: Set[int] = set()
    work = list(starts)
    while work:
        nid = work.pop()
        if nid in seen:
            continue
        seen.add(nid)
        work.extend(neighbors(nid))
    return seen


# ---------------------------------------------------------------------
# reaching definitions
# ---------------------------------------------------------------------

def _assigned_names(stmt: ast.AST) -> List[str]:
    """Plain names (re)bound by executing this one statement."""
    targets: List[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        targets = [stmt.target]
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        targets = [item.optional_vars for item in stmt.items
                   if item.optional_vars is not None]
    names: List[str] = []
    for target in targets:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                names.append(node.id)
    return names


def reaching_definitions(
    cfg: ControlFlowGraph,
) -> Dict[int, FrozenSet[Tuple[str, int]]]:
    """``(name, defining nid)`` pairs that may reach each node's entry.

    Parameters are definitions at the entry node (nid 0)."""
    params = cfg.fn.args
    all_args = (list(params.posonlyargs) + list(params.args)
                + list(params.kwonlyargs))
    if params.vararg:
        all_args.append(params.vararg)
    if params.kwarg:
        all_args.append(params.kwarg)
    init = frozenset((arg.arg, cfg.entry_nid) for arg in all_args)

    def transfer(nid: int, fact: Fact) -> Fact:
        stmt = cfg.node(nid).stmt
        if stmt is None:
            return fact
        names = _assigned_names(stmt)
        if not names:
            return fact
        kept = {pair for pair in fact if pair[0] not in names}
        kept.update((name, nid) for name in names)
        return frozenset(kept)

    return solve(cfg, transfer, init)


# ---------------------------------------------------------------------
# taint
# ---------------------------------------------------------------------

def _attr_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """Dotted name path of an attribute/name expression, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


@dataclass(frozen=True)
class TaintSpec:
    """What is tainted and what cleanses it.

    ``source_chains``: attribute paths whose reads (and any calls on
    them) produce tainted values — e.g. ``("self", "path")`` taints
    ``self.path`` and ``self.path.split(...)``.
    ``sanitizers``: callable names (the last chain segment) whose
    return value is clean regardless of argument taint — the
    validator set.
    """

    source_chains: Tuple[Tuple[str, ...], ...]
    sanitizers: FrozenSet[str]


class TaintAnalysis:
    """Forward may-taint over local variable names."""

    def __init__(self, spec: TaintSpec) -> None:
        self.spec = spec

    # -- expression evaluation ----------------------------------------
    def expr_tainted(self, expr: ast.expr, tainted: FrozenSet[str]) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in tainted
        chain = _attr_chain(expr)
        if chain is not None:
            if any(chain[: len(source)] == source
                   for source in self.spec.source_chains):
                return True
            return chain[0] in tainted
        if isinstance(expr, ast.Call):
            func_chain = _attr_chain(expr.func)
            if func_chain is not None and func_chain[-1] in self.spec.sanitizers:
                return False
            if func_chain is not None and any(
                func_chain[: len(source)] == source
                for source in self.spec.source_chains
            ):
                return True  # calling a source (self._read_body()) taints
            if isinstance(expr.func, ast.Attribute) and self.expr_tainted(
                expr.func.value, tainted
            ):
                return True  # method call on a tainted object
            args = list(expr.args) + [kw.value for kw in expr.keywords]
            return any(self.expr_tainted(arg, tainted) for arg in args)
        if isinstance(expr, ast.Lambda):
            return False  # the body runs later, under its own frame
        if isinstance(expr, ast.Compare):
            return False  # a bool verdict about the data, not the data
        return any(
            self.expr_tainted(child, tainted)
            for child in ast.iter_child_nodes(expr)
            if isinstance(child, ast.expr)
        )

    # -- node transfer -------------------------------------------------
    def _transfer(self, cfg: ControlFlowGraph, nid: int,
                  fact: FrozenSet[str]) -> FrozenSet[str]:
        stmt = cfg.node(nid).stmt
        if stmt is None:
            return fact
        if isinstance(stmt, ast.Assign):
            return self._bind(stmt.targets, stmt.value, fact)
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            return self._bind([stmt.target], stmt.value, fact)
        if isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name) and self.expr_tainted(
                stmt.value, fact
            ):
                return fact | {stmt.target.id}
            return fact
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._bind([stmt.target], stmt.iter, fact)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            result = fact
            for item in stmt.items:
                if item.optional_vars is not None:
                    result = self._bind([item.optional_vars],
                                        item.context_expr, result)
            return result
        return fact

    def _bind(self, targets: List[ast.expr], value: ast.expr,
              fact: FrozenSet[str]) -> FrozenSet[str]:
        names = [node.id for target in targets
                 for node in ast.walk(target) if isinstance(node, ast.Name)]
        if not names:
            return fact
        if self.expr_tainted(value, fact):
            return fact | set(names)
        return fact - set(names)

    # -- solve ---------------------------------------------------------
    def run(self, cfg: ControlFlowGraph) -> Dict[int, FrozenSet[str]]:
        """Tainted local names at each node's entry."""
        return solve(
            cfg,
            lambda nid, fact: self._transfer(cfg, nid, fact),
            frozenset(),
        )
