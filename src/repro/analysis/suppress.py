"""Inline ``# reprolint: disable=RULE`` suppression comments.

Two placements are honored:

* **Inline** — a trailing comment on the offending line suppresses
  findings on that line::

      eff = matrix.effective_counts  # reprolint: disable=REP001

* **Standalone** — a comment-only line suppresses findings on the next
  source line (for lines with no room left under the length limit)::

      # reprolint: disable=REP002 - detect() charges the nominal cost
      entries = matrix.entries(effective=True)

Multiple rules are comma-separated (``disable=REP001,REP002``);
``disable=all`` silences every rule.  Anything after the rule list is
free-form justification — *why* the invariant provably holds here —
and is strongly encouraged (see docs/STATIC_ANALYSIS.md).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from typing import Dict, Optional, Set

__all__ = ["SuppressionMap", "parse_suppressions", "ALL_RULES"]

#: Sentinel rule name matching every rule.
ALL_RULES = "all"

_DIRECTIVE_RE = re.compile(
    r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s]*[A-Za-z0-9_])"
)


class SuppressionMap:
    """Which rules are suppressed on which (1-based) lines."""

    def __init__(self) -> None:
        self._by_line: Dict[int, Set[str]] = {}

    def add(self, line: int, rules: Set[str]) -> None:
        self._by_line.setdefault(line, set()).update(rules)

    def is_suppressed(self, rule: str, line: int) -> bool:
        rules = self._by_line.get(line)
        if not rules:
            return False
        return ALL_RULES in rules or rule in rules

    def lines(self) -> Dict[int, Set[str]]:
        """The raw line -> rules mapping (for tests/inspection)."""
        return {line: set(rules) for line, rules in self._by_line.items()}

    def __len__(self) -> int:
        return len(self._by_line)


def _parse_directive(comment: str) -> Set[str]:
    """Rule ids named by one comment, empty set when not a directive."""
    match = _DIRECTIVE_RE.search(comment)
    if not match:
        return set()
    rules = set()
    for token in match.group(1).split(","):
        token = token.strip()
        # Tolerate trailing free-form justification after the last rule
        # ("disable=REP002 - caller charges"): keep the leading word.
        token = token.split()[0] if token else ""
        if token:
            rules.add(token)
    return rules


def parse_suppressions(source: str,
                       tree: Optional[ast.Module] = None) -> SuppressionMap:
    """Extract every suppression directive from ``source``.

    Uses the tokenizer (not a regex over raw lines) so directives
    inside string literals are not honored.  A directive on a
    comment-only line applies to that line *and* the next; an inline
    directive applies to its own line.

    When ``tree`` is supplied, a directive anywhere inside a
    *multi-line* ``with`` header additionally covers the statement's
    anchor line — findings on ``with`` statements (REP006 lock-order)
    anchor at ``with``'s own line, which a directive on a continuation
    line of the header could otherwise never reach.
    """
    suppressions = SuppressionMap()
    line_starts: Dict[int, bool] = {}   # line -> saw a non-comment token
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return suppressions
    for tok in tokens:
        if tok.type in (tokenize.NL, tokenize.NEWLINE, tokenize.INDENT,
                        tokenize.DEDENT, tokenize.ENCODING,
                        tokenize.ENDMARKER):
            continue
        if tok.type != tokenize.COMMENT:
            line_starts[tok.start[0]] = True
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        rules = _parse_directive(tok.string)
        if not rules:
            continue
        line = tok.start[0]
        suppressions.add(line, rules)
        if not line_starts.get(line):
            # Comment-only line: the directive covers the next line too.
            suppressions.add(line + 1, rules)
    if tree is not None:
        _extend_with_headers(suppressions, tree)
    return suppressions


def _extend_with_headers(suppressions: SuppressionMap,
                         tree: ast.Module) -> None:
    """Map directives on `with` header continuation lines to the anchor."""
    by_line = suppressions.lines()
    if not by_line:
        return
    for node in ast.walk(tree):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        header_end = node.lineno
        for item in node.items:
            header_end = max(header_end,
                             getattr(item.context_expr, "end_lineno", None)
                             or node.lineno)
            if item.optional_vars is not None:
                header_end = max(header_end,
                                 getattr(item.optional_vars, "end_lineno",
                                         None) or node.lineno)
        for line in range(node.lineno + 1, header_end + 1):
            rules = by_line.get(line)
            if rules:
                suppressions.add(node.lineno, rules)
