"""Text and JSON reporters for reprolint runs."""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.analysis.baseline import Baseline
from repro.analysis.engine import LintResult
from repro.analysis.findings import Finding, Severity

__all__ = ["render_text", "render_json"]

REPORT_VERSION = 1


def _summary_line(new: List[Finding], baselined: List[Finding],
                  result: LintResult) -> str:
    parts = [f"{result.files_checked} files checked"]
    by_sev: Dict[str, int] = {}
    for finding in new:
        by_sev[finding.severity] = by_sev.get(finding.severity, 0) + 1
    if new:
        detail = ", ".join(
            f"{by_sev[sev]} {sev}{'s' if by_sev[sev] != 1 else ''}"
            for sev in sorted(by_sev, key=Severity.rank)
        )
        parts.append(f"{len(new)} new finding(s) ({detail})")
    else:
        parts.append("no new findings")
    if baselined:
        parts.append(f"{len(baselined)} baselined")
    if result.suppressed:
        parts.append(f"{len(result.suppressed)} suppressed")
    if result.errors:
        parts.append(f"{len(result.errors)} file error(s)")
    return "; ".join(parts)


def render_text(
    result: LintResult,
    new: List[Finding],
    baselined: List[Finding],
    stale: List[Dict[str, object]],
    show_baselined: bool = False,
) -> str:
    """Human-readable report: one ``file:line: RULE severity: msg`` per line."""
    lines: List[str] = []
    for path, message in result.errors:
        lines.append(f"{path}: error: {message}")
    for finding in new:
        lines.append(finding.render())
    if show_baselined:
        for finding in baselined:
            lines.append(f"{finding.render()} [baselined]")
    for entry in stale:
        lines.append(
            f"stale baseline entry: {entry.get('rule')} at "
            f"{entry.get('file')}:{entry.get('line')} no longer occurs — "
            f"prune it with --write-baseline"
        )
    lines.append(_summary_line(new, baselined, result))
    return "\n".join(lines)


def render_json(
    result: LintResult,
    new: List[Finding],
    baselined: List[Finding],
    stale: List[Dict[str, object]],
    baseline: Optional[Baseline] = None,
) -> str:
    """Machine-readable report (stable shape, versioned)."""
    doc = {
        "tool": "reprolint",
        "report_version": REPORT_VERSION,
        "files_checked": result.files_checked,
        "new": [f.to_dict() for f in new],
        "baselined": [f.to_dict() for f in baselined],
        "suppressed": [f.to_dict() for f in result.suppressed],
        "stale_baseline_entries": stale,
        "errors": [
            {"file": path, "message": message}
            for path, message in result.errors
        ],
        "summary": {
            "new": len(new),
            "baselined": len(baselined),
            "suppressed": len(result.suppressed),
            "stale": len(stale),
            "baseline_size": len(baseline) if baseline is not None else 0,
        },
    }
    return json.dumps(doc, indent=2, sort_keys=True)
