"""Text, JSON and SARIF reporters for reprolint runs."""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.analysis.baseline import Baseline
from repro.analysis.engine import LintResult
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import rule_index

__all__ = ["render_text", "render_json", "render_sarif"]

REPORT_VERSION = 1

#: The schema the SARIF reporter targets (GitHub code scanning ingests
#: this version; the test suite validates the output shape against it).
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _summary_line(new: List[Finding], baselined: List[Finding],
                  result: LintResult) -> str:
    parts = [f"{result.files_checked} files checked"]
    by_sev: Dict[str, int] = {}
    for finding in new:
        by_sev[finding.severity] = by_sev.get(finding.severity, 0) + 1
    if new:
        detail = ", ".join(
            f"{by_sev[sev]} {sev}{'s' if by_sev[sev] != 1 else ''}"
            for sev in sorted(by_sev, key=Severity.rank)
        )
        parts.append(f"{len(new)} new finding(s) ({detail})")
    else:
        parts.append("no new findings")
    if baselined:
        parts.append(f"{len(baselined)} baselined")
    if result.suppressed:
        parts.append(f"{len(result.suppressed)} suppressed")
    if result.errors:
        parts.append(f"{len(result.errors)} file error(s)")
    return "; ".join(parts)


def render_text(
    result: LintResult,
    new: List[Finding],
    baselined: List[Finding],
    stale: List[Dict[str, object]],
    show_baselined: bool = False,
) -> str:
    """Human-readable report: one ``file:line: RULE severity: msg`` per line."""
    lines: List[str] = []
    for path, message in result.errors:
        lines.append(f"{path}: error: {message}")
    for finding in new:
        lines.append(finding.render())
    if show_baselined:
        for finding in baselined:
            lines.append(f"{finding.render()} [baselined]")
    for entry in stale:
        lines.append(
            f"stale baseline entry: {entry.get('rule')} at "
            f"{entry.get('file')}:{entry.get('line')} no longer occurs — "
            f"prune it with --prune-baseline --yes"
        )
    lines.append(_summary_line(new, baselined, result))
    return "\n".join(lines)


def render_json(
    result: LintResult,
    new: List[Finding],
    baselined: List[Finding],
    stale: List[Dict[str, object]],
    baseline: Optional[Baseline] = None,
) -> str:
    """Machine-readable report (stable shape, versioned)."""
    doc = {
        "tool": "reprolint",
        "report_version": REPORT_VERSION,
        "files_checked": result.files_checked,
        "new": [f.to_dict() for f in new],
        "baselined": [f.to_dict() for f in baselined],
        "suppressed": [f.to_dict() for f in result.suppressed],
        "stale_baseline_entries": stale,
        "errors": [
            {"file": path, "message": message}
            for path, message in result.errors
        ],
        "summary": {
            "new": len(new),
            "baselined": len(baselined),
            "suppressed": len(result.suppressed),
            "stale": len(stale),
            "baseline_size": len(baseline) if baseline is not None else 0,
        },
    }
    return json.dumps(doc, indent=2, sort_keys=True)


# ---------------------------------------------------------------------------
# SARIF 2.1.0 (github/codeql-action/upload-sarif ingests this)


def _sarif_level(severity: str) -> str:
    return "error" if severity == Severity.ERROR else "warning"


def _sarif_result(finding: Finding, baseline_state: str) -> Dict[str, object]:
    return {
        "ruleId": finding.rule,
        "level": _sarif_level(finding.severity),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": finding.line,
                        # SARIF columns are 1-based; findings carry the
                        # ast 0-based col_offset.
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
        "partialFingerprints": {"reprolint/v1": finding.fingerprint},
        "baselineState": baseline_state,
    }


def render_sarif(
    result: LintResult,
    new: List[Finding],
    baselined: List[Finding],
) -> str:
    """One SARIF 2.1.0 run: new findings + baselined ones marked so.

    GitHub annotates PR diffs from the ``results`` array; baselined
    findings ship with ``baselineState: unchanged`` so code scanning
    can distinguish accepted debt from regressions, while suppressed
    findings are omitted entirely (they are counted in the text/JSON
    reports, which remain the gating surface).
    """
    import repro

    rules = []
    for rule_id, rule_cls in sorted(rule_index().items()):
        rules.append({
            "id": rule_id,
            "name": rule_cls.title or rule_id,
            "shortDescription": {"text": rule_cls.title or rule_id},
            "fullDescription": {"text": rule_cls.rationale or rule_cls.title},
            "defaultConfiguration": {
                "level": _sarif_level(rule_cls.severity),
            },
            "helpUri": (
                "https://github.com/repro/repro/blob/main/docs/"
                "STATIC_ANALYSIS.md"
            ),
        })
    results = [_sarif_result(f, "new") for f in new]
    results += [_sarif_result(f, "unchanged") for f in baselined]
    doc = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "version": getattr(repro, "__version__", "0"),
                        "informationUri": (
                            "https://github.com/repro/repro/blob/main/docs/"
                            "STATIC_ANALYSIS.md"
                        ),
                        "rules": rules,
                    }
                },
                "columnKind": "utf16CodeUnits",
                # SRCROOT is resolved by the consumer (GitHub binds it
                # to the checkout root); declared without a uri per
                # SARIF 3.14.14 since the absolute root is unknowable
                # at render time.
                "originalUriBaseIds": {
                    "SRCROOT": {
                        "description": {"text": "repository root"},
                    },
                },
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True)
