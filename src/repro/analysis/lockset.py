"""Whole-program lockset analysis and guarded-by inference.

An Eraser-style lockset analysis (Savage et al., recast statically
over reprolint's call graph and CFG machinery) in three steps:

1. **May-hold locksets.**  Intraprocedurally every ``self.<attr>``
   access carries the ``with self.<lock>:`` regions lexically holding
   it (:class:`~repro.analysis.callgraph.AttrAccess`).  Interprocedur-
   ally, entry locksets propagate along **resolved** call edges only —
   the same edge discipline REP006 uses, for the same reason: a
   speculative edge into a lock-holding caller would fabricate
   protection that does not exist.  The entry lockset of a function is
   the *intersection* over all resolved call sites of the caller's
   lockset at that site (the must-hold direction — claiming a guard
   needs every path to hold it); ``*_locked`` methods are pinned to
   all locks of their class per the documented caller-holds-the-lock
   convention.  A function with no resolved callers is a root and
   enters with the empty lockset.

2. **Thread-escape classification.**  An attribute is *shared* when
   its class can be reached by more than one thread of control —
   the class owns a lock (it advertises concurrent use), one of its
   methods is handed to a ``Thread``/``Process`` ``target=``, or its
   methods are reachable from such a target — **and** the attribute
   is written at least once outside ``__init__``.  Constructor-phase
   writes are thread-confined (the object has not escaped yet) and
   attributes only ever assigned in the ctor are configuration, not
   shared mutable state.

3. **Guarded-by inference.**  Per shared attribute, intersect the
   may-hold locksets of every post-ctor, non-handler access.  A
   non-empty intersection names the protecting lock(s) — the
   guarded-by table ``repro lint --guards`` prints; an empty one means
   no single lock consistently protects the attribute, which is
   REP011's finding.

The module also hosts the lock universe and may-acquire fixpoint that
REP006 (lock ordering) is built on — moved here so both rule families
share one set of summaries — and the child-process reachability
closure REP012 (cross-process sharing) uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.analysis.callgraph import (
    CallRef,
    ClassSummary,
    FuncKey,
    FunctionSummary,
    LockKey,
    ModuleSummary,
    ProgramContext,
    Site,
)

__all__ = [
    "Access",
    "GuardRow",
    "LocksetAnalysis",
    "MEDIATION_METHODS",
    "Witness",
    "direct_acquires",
    "exempt_module",
    "lock_universe",
    "may_acquire",
    "mediated_type",
]

#: A witnessed acquisition: where, in which file.
Witness = Tuple[str, Site]          # (display_path, site)

#: Module-path segments exempt from guard inference (the metrics
#: registry is documented as internally synchronized).
_EXEMPT_SEGMENTS = frozenset({"metrics"})


# ---------------------------------------------------------------------------
# The REP006 building blocks (shared by lock ordering and locksets)


def lock_universe(program: ProgramContext) -> Dict[LockKey, str]:
    """Every ``self.<attr> = threading.(R)Lock()`` in the program."""
    universe: Dict[LockKey, str] = {}
    for mp in sorted(program.modules):
        for cls_name, csum in program.modules[mp].classes.items():
            for attr, kind in csum.lock_attrs.items():
                universe[(mp, cls_name, attr)] = kind
    return universe


def direct_acquires(
    program: ProgramContext,
) -> Dict[FuncKey, List[Tuple[LockKey, Witness]]]:
    """Per-function direct acquisitions (with-blocks + ``*_locked``)."""
    direct: Dict[FuncKey, List[Tuple[LockKey, Witness]]] = {}
    for mod, fsum, key in program.iter_functions():
        entries: List[Tuple[LockKey, Witness]] = []
        if fsum.cls:
            csum = mod.classes.get(fsum.cls)
            if csum is not None:
                for acq in fsum.acquires:
                    if acq.attr in csum.lock_attrs:
                        entries.append((
                            (mod.module_path, fsum.cls, acq.attr),
                            (mod.display_path, acq.site),
                        ))
                if fsum.locked_convention:
                    for attr in sorted(csum.lock_attrs):
                        entries.append((
                            (mod.module_path, fsum.cls, attr),
                            (mod.display_path, fsum.site),
                        ))
        direct[key] = entries
    return direct


def may_acquire(
    program: ProgramContext,
    direct: Dict[FuncKey, List[Tuple[LockKey, Witness]]],
) -> Dict[FuncKey, Dict[LockKey, Witness]]:
    """Fixpoint of acquisitions over resolved call edges."""
    may: Dict[FuncKey, Dict[LockKey, Witness]] = {
        key: {lock: witness for lock, witness in entries}
        for key, entries in direct.items()
    }
    changed = True
    while changed:
        changed = False
        for key in may:
            target = may[key]
            for callee in program.resolved_callees(key):
                for lock, witness in may.get(callee, {}).items():
                    if lock not in target:
                        target[lock] = witness
                        changed = True
    return may


# ---------------------------------------------------------------------------
# Access records with their may-hold locksets


@dataclass(frozen=True)
class Access:
    """One attribute access annotated with its may-hold lockset."""

    key: FuncKey                    # owning function
    method: str                     # bare method name
    attr: str
    kind: str                       # "read" | "write"
    site: Site
    display_path: str
    lockset: FrozenSet[LockKey]
    in_handler: bool
    via_method: str                 # self.<attr>.<m>(...) receiver method

    @property
    def in_ctor(self) -> bool:
        return self.method == "__init__"

    def where(self) -> str:
        return f"{self.display_path}:{self.site.line}"


@dataclass
class GuardRow:
    """One guarded-by table row: attribute → protecting lock(s) → sites."""

    display_path: str
    cls: str
    attr: str
    guards: Tuple[str, ...]         # rendered lock names; () = unguarded
    sites: int                      # post-ctor accesses considered
    first_site: str                 # "path:line" of the first access

    def to_dict(self) -> Dict[str, object]:
        return {
            "file": self.display_path,
            "class": self.cls,
            "attr": self.attr,
            "guards": list(self.guards),
            "sites": self.sites,
            "first_site": self.first_site,
        }


def exempt_module(module_path: str) -> bool:
    """Is this module exempt from guard inference (metrics registry)?"""
    segments = module_path[:-3].split("/") if module_path.endswith(".py") \
        else module_path.split("/")
    return bool(_EXEMPT_SEGMENTS.intersection(segments))


#: Queue/Pipe endpoint methods — calls through them are the sanctioned
#: cross-process channel REP012 accepts.
MEDIATION_METHODS = frozenset({
    "cancel_join_thread", "close", "empty", "full", "get", "get_nowait",
    "join", "join_thread", "poll", "put", "put_nowait", "qsize", "recv",
    "recv_bytes", "send", "send_bytes", "task_done",
})

#: Inferred attribute types that *are* a mediation channel (or another
#: process handle) rather than plain shared state.
_MEDIATED_TYPE_SUFFIXES = (
    "Queue", "SimpleQueue", "JoinableQueue", "Pipe", "Connection",
    "Process", "Event",
)


def mediated_type(csum: ClassSummary, attr: str) -> bool:
    """Is the attribute's inferred type itself a cross-process channel?"""
    attr_type = csum.attr_types.get(attr, "")
    leaf = attr_type.rsplit(".", 1)[-1]
    return leaf.endswith(_MEDIATED_TYPE_SUFFIXES)


class LocksetAnalysis:
    """The linked lockset view of one program (built once per lint)."""

    def __init__(self, program: ProgramContext):
        self.program = program
        self.universe = lock_universe(program)
        self.entry = self._compute_entry()
        #: (module_path, class) → attr → accesses, with locksets applied.
        self.by_class: Dict[Tuple[str, str], Dict[str, List[Access]]] = {}
        self._collect_accesses()
        self.child_reachable = self._child_reachable()
        self.process_escaping = self._process_escaping()

    # -- entry locksets (interprocedural must-hold) ---------------------

    def _call_sites(
        self, mod: ModuleSummary, fsum: FunctionSummary,
    ) -> Iterable[Tuple[CallRef, Tuple[str, ...]]]:
        csum = mod.classes.get(fsum.cls) if fsum.cls else None
        if csum is not None and csum.lock_attrs:
            return fsum.call_locksets
        return [(ref, ()) for ref in fsum.calls]

    def _held_keys(self, mod: ModuleSummary, fsum: FunctionSummary,
                   held: Tuple[str, ...]) -> FrozenSet[LockKey]:
        csum = mod.classes.get(fsum.cls) if fsum.cls else None
        if csum is None:
            return frozenset()
        return frozenset(
            (mod.module_path, fsum.cls, attr) for attr in held
            if attr in csum.lock_attrs
        )

    def _compute_entry(self) -> Dict[FuncKey, FrozenSet[LockKey]]:
        program = self.program
        top = frozenset(self.universe)
        incoming: Dict[FuncKey, List[Tuple[FuncKey, FrozenSet[LockKey]]]] = {}
        fixed: Dict[FuncKey, FrozenSet[LockKey]] = {}
        for mod, fsum, key in program.iter_functions():
            if fsum.locked_convention and fsum.cls:
                csum = mod.classes.get(fsum.cls)
                if csum is not None and csum.lock_attrs:
                    fixed[key] = frozenset(
                        (mod.module_path, fsum.cls, attr)
                        for attr in csum.lock_attrs
                    )
            for ref, held in self._call_sites(mod, fsum):
                callee = program.resolve_held_call(mod.module_path,
                                                   fsum.cls, ref)
                if callee is None or callee == key:
                    continue
                incoming.setdefault(callee, []).append(
                    (key, self._held_keys(mod, fsum, held)))
        entry: Dict[FuncKey, FrozenSet[LockKey]] = {}
        for key in program.functions:
            if key in fixed:
                entry[key] = fixed[key]
            elif incoming.get(key):
                entry[key] = top        # narrowed by the fixpoint below
            else:
                entry[key] = frozenset()
        changed = True
        while changed:
            changed = False
            for key, callers in incoming.items():
                if key in fixed:
                    continue
                new: Optional[FrozenSet[LockKey]] = None
                for caller, held_keys in callers:
                    at_site = entry.get(caller, frozenset()) | held_keys
                    new = at_site if new is None else (new & at_site)
                if new is not None and new != entry[key]:
                    entry[key] = new
                    changed = True
        return entry

    # -- access collection ----------------------------------------------

    def _collect_accesses(self) -> None:
        for mod, fsum, key in self.program.iter_functions():
            if not fsum.cls or fsum.cls not in mod.classes:
                continue
            base = self.entry.get(key, frozenset())
            class_key = (mod.module_path, fsum.cls)
            per_attr = self.by_class.setdefault(class_key, {})
            for access in fsum.accesses:
                lockset = base | self._held_keys(mod, fsum, access.held)
                per_attr.setdefault(access.attr, []).append(Access(
                    key=key,
                    method=fsum.name,
                    attr=access.attr,
                    kind=access.kind,
                    site=access.site,
                    display_path=mod.display_path,
                    lockset=lockset,
                    in_handler=access.in_handler,
                    via_method=access.method,
                ))

    # -- thread escape ---------------------------------------------------

    def _spawn_roots(self, kinds: FrozenSet[str]) -> Set[FuncKey]:
        roots: Set[FuncKey] = set()
        for mod, fsum, _key in self.program.iter_functions():
            for kind, ref in fsum.spawn_targets:
                if kind not in kinds:
                    continue
                target = self.program.resolve_held_call(
                    mod.module_path, fsum.cls, ref)
                if target is not None:
                    roots.add(target)
        return roots

    def _reachable(self, roots: Set[FuncKey]) -> Set[FuncKey]:
        seen: Set[FuncKey] = set()
        work = list(roots)
        while work:
            key = work.pop()
            if key in seen:
                continue
            seen.add(key)
            work.extend(self.program.resolved_callees(key))
        return seen

    def _child_reachable(self) -> Set[FuncKey]:
        """Functions that may run inside a spawned child *process*."""
        return self._reachable(self._spawn_roots(frozenset({"process"})))

    def _process_escaping(self) -> Set[Tuple[str, str]]:
        """Classes whose *instances* cross the spawn boundary.

        An instance is copied into the child exactly when a bound
        method of its class is the ``Process`` target — the whole
        object rides along and each side now holds a silently
        diverging copy.  Classes merely *used* on both sides, each
        side constructing its own instance (the WAL, the in-process
        shard worker), never share an object and are not eligible for
        REP012 — that would be object-insensitive noise.
        """
        escaping: Set[Tuple[str, str]] = set()
        for module_path, qualname in self._spawn_roots(
                frozenset({"process"})):
            if "." not in qualname:
                continue                # module-function target
            cls = qualname.rsplit(".", 1)[0]
            summary = self.program.modules.get(module_path)
            if summary is not None and cls in summary.classes:
                escaping.add((module_path, cls))
        return escaping

    def shared_class(self, module_path: str, cls: str) -> bool:
        """Can instances of this class be reached by >1 thread of control?"""
        summary = self.program.modules.get(module_path)
        if summary is None or cls not in summary.classes:
            return False
        csum = summary.classes[cls]
        if csum.lock_attrs:
            return True
        spawn_reachable = self._reachable(
            self._spawn_roots(frozenset({"thread", "process"})))
        return any((module_path, f"{cls}.{meth}") in spawn_reachable
                   for meth in csum.methods)

    def shared_attrs(self, module_path: str, cls: str) -> List[str]:
        """Attributes written at least once outside the ctor (sorted),
        excluding the class's lock attributes themselves."""
        summary = self.program.modules.get(module_path)
        if summary is None or cls not in summary.classes:
            return []
        lock_attrs = set(summary.classes[cls].lock_attrs)
        per_attr = self.by_class.get((module_path, cls), {})
        shared: List[str] = []
        for attr in sorted(per_attr):
            if attr in lock_attrs:
                continue
            if any(a.kind == "write" and not a.in_ctor
                   for a in per_attr[attr]):
                shared.append(attr)
        return shared

    # -- guard inference --------------------------------------------------

    def guarded_accesses(self, module_path: str, cls: str,
                         attr: str) -> List[Access]:
        """The post-ctor, non-handler accesses guard inference considers,
        sorted by site."""
        per_attr = self.by_class.get((module_path, cls), {})
        accesses = [a for a in per_attr.get(attr, [])
                    if not a.in_ctor and not a.in_handler]
        return sorted(accesses, key=lambda a: (a.display_path, a.site.line,
                                               a.site.col))

    def guard_of(self, accesses: Iterable[Access]) -> FrozenSet[LockKey]:
        """The lockset intersection across access sites (the guard)."""
        guard: Optional[FrozenSet[LockKey]] = None
        for access in accesses:
            guard = (access.lockset if guard is None
                     else guard & access.lockset)
        return guard if guard is not None else frozenset()

    def render_lock(self, key: LockKey, module_path: str, cls: str) -> str:
        """``_lock`` for a same-class guard, ``Owner._lock`` otherwise."""
        if key[0] == module_path and key[1] == cls:
            return key[2]
        return f"{key[1]}.{key[2]}"

    def guard_table(self) -> List[GuardRow]:
        """One row per shared attribute of every shared class, sorted."""
        rows: List[GuardRow] = []
        for (module_path, cls) in sorted(self.by_class):
            if exempt_module(module_path):
                continue
            if not self.shared_class(module_path, cls):
                continue
            summary = self.program.modules[module_path]
            for attr in self.shared_attrs(module_path, cls):
                accesses = self.guarded_accesses(module_path, cls, attr)
                if not accesses:
                    continue
                guard = self.guard_of(accesses)
                names = tuple(sorted(
                    self.render_lock(key, module_path, cls) for key in guard))
                rows.append(GuardRow(
                    display_path=summary.display_path,
                    cls=cls,
                    attr=attr,
                    guards=names,
                    sites=len(accesses),
                    first_site=accesses[0].where(),
                ))
        return rows
