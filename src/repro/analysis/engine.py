"""The reprolint engine: discover, parse, lint, suppress, fingerprint.

:func:`lint_package` walks every ``*.py`` under the installed
``repro`` package (or any directory standing in for it), runs each
registered rule whose scope matches the file's *module path* — its
posix path relative to the package root — strips findings silenced by
inline ``# reprolint: disable=`` directives, and assigns the
content-based fingerprints the baseline matches against.

:func:`lint_source` is the single-file entry point the test-suite
uses: it lints an in-memory source string under a *virtual* module
path, so fixtures exercise scope behaviour (``core/`` vs ``service/``)
without living inside the package.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.analysis.findings import Finding, Severity, assign_fingerprints
from repro.analysis.registry import FileContext, Rule, all_rules
from repro.analysis.suppress import parse_suppressions

__all__ = ["LintResult", "default_package_root", "lint_package", "lint_source"]

#: Directories never descended into during discovery.
_SKIP_DIRS = frozenset({"__pycache__"})


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    #: ``(display_path, message)`` for files that failed to parse.
    errors: List[Tuple[str, str]] = field(default_factory=list)
    files_checked: int = 0

    def counts_by_severity(self) -> dict:
        out: dict = {}
        for finding in self.findings:
            out[finding.severity] = out.get(finding.severity, 0) + 1
        return out

    def extend(self, other: "LintResult") -> None:
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.errors.extend(other.errors)
        self.files_checked += other.files_checked


def default_package_root() -> pathlib.Path:
    """The directory of the importable ``repro`` package."""
    import repro

    return pathlib.Path(repro.__file__).resolve().parent


def _sort_key(finding: Finding) -> Tuple[str, int, int, str]:
    return (finding.path, finding.line, finding.col, finding.rule)


def _lint_one(
    source: str,
    module_path: str,
    display_path: str,
    rules: Sequence[Rule],
) -> LintResult:
    result = LintResult(files_checked=1)
    try:
        ctx = FileContext(module_path, source, display_path=display_path)
    except SyntaxError as exc:
        result.errors.append(
            (display_path, f"syntax error: {exc.msg} (line {exc.lineno})")
        )
        return result
    raw: List[Finding] = []
    for rule in rules:
        raw.extend(rule.run(ctx))
    suppressions = parse_suppressions(source)
    for finding in sorted(raw, key=_sort_key):
        if suppressions.is_suppressed(finding.rule, finding.line):
            result.suppressed.append(finding)
        else:
            result.findings.append(finding)
    return result


def lint_source(
    source: str,
    module_path: str,
    only: Sequence[str] = (),
    display_path: str = "",
) -> LintResult:
    """Lint one in-memory source under a virtual module path."""
    result = _lint_one(
        source, module_path, display_path or module_path, all_rules(only)
    )
    assign_fingerprints(result.findings)
    return result


def _iter_sources(root: pathlib.Path) -> Iterable[pathlib.Path]:
    for path in sorted(root.rglob("*.py")):
        if any(part in _SKIP_DIRS for part in path.parts):
            continue
        yield path


def lint_package(
    root: Optional[Union[str, pathlib.Path]] = None,
    only: Sequence[str] = (),
    display_base: str = "src/repro",
) -> LintResult:
    """Lint every python file under ``root`` (default: the repro package).

    ``display_base`` prefixes reported paths so findings render as
    repo-relative (``src/repro/core/basic.py:12``) regardless of where
    the package is installed.
    """
    pkg_root = pathlib.Path(root) if root is not None else default_package_root()
    rules = all_rules(only)
    result = LintResult()
    for path in _iter_sources(pkg_root):
        module_path = path.relative_to(pkg_root).as_posix()
        display = f"{display_base}/{module_path}" if display_base else module_path
        source = path.read_text(encoding="utf-8")
        result.extend(_lint_one(source, module_path, display, rules))
    result.findings.sort(key=_sort_key)
    result.suppressed.sort(key=_sort_key)
    assign_fingerprints(result.findings)
    return result
