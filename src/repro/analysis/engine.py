"""The reprolint engine: discover, parse, lint, link, suppress, fingerprint.

:func:`lint_package` walks every ``*.py`` under the installed
``repro`` package (or any directory standing in for it) and runs two
passes:

1. **per-file** — each registered per-file rule whose scope matches
   the file's *module path* (its posix path relative to the package
   root), plus the :mod:`~repro.analysis.callgraph` summarizer.  This
   pass is cached per file (:mod:`~repro.analysis.cache`) keyed on
   mtime and content hash.
2. **whole-program** — the summaries are linked into a
   :class:`~repro.analysis.callgraph.ProgramContext` and every rule
   with ``whole_program = True`` runs once over the call graph
   (interprocedural ops-discipline, lock-order cycles).

Findings from both passes flow through the same suppression filter
(inline ``# reprolint: disable=`` directives) and receive the
content-based fingerprints the baseline matches against.

:func:`lint_source` is the single-file entry point the test-suite
uses: it lints an in-memory source string under a *virtual* module
path — the whole-program pass then sees a one-module program, which is
exactly what the cross-file fixtures exercise.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.cache import AnalysisCache
from repro.analysis.callgraph import ModuleSummary, ProgramContext, summarize_module
from repro.analysis.dataflow import ANALYSIS_VERSION
from repro.analysis.findings import Finding, assign_fingerprints
from repro.analysis.lockset import GuardRow, LocksetAnalysis
from repro.analysis.registry import FileContext, Rule, all_rules
from repro.analysis.suppress import SuppressionMap, parse_suppressions

__all__ = [
    "LintResult",
    "compute_guards",
    "default_package_root",
    "lint_package",
    "lint_source",
]

#: Directories never descended into during discovery.
_SKIP_DIRS = frozenset({"__pycache__"})


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    #: ``(display_path, message)`` for files that failed to parse.
    errors: List[Tuple[str, str]] = field(default_factory=list)
    files_checked: int = 0

    def counts_by_severity(self) -> dict:
        out: dict = {}
        for finding in self.findings:
            out[finding.severity] = out.get(finding.severity, 0) + 1
        return out

    def extend(self, other: "LintResult") -> None:
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.errors.extend(other.errors)
        self.files_checked += other.files_checked

    def restricted_to(self, paths: Set[str]) -> "LintResult":
        """A copy narrowed to findings in ``paths`` (display paths).

        The analysis still saw every file — the whole-program pass
        needs the full call graph — this narrows only the *report*,
        which is what ``repro lint --changed`` wants: full-fidelity
        findings, scoped to the files the diff touches.
        """
        return LintResult(
            findings=[f for f in self.findings if f.path in paths],
            suppressed=[f for f in self.suppressed if f.path in paths],
            errors=[(p, m) for p, m in self.errors if p in paths],
            files_checked=self.files_checked,
        )


def default_package_root() -> pathlib.Path:
    """The directory of the importable ``repro`` package."""
    import repro

    return pathlib.Path(repro.__file__).resolve().parent


def _sort_key(finding: Finding) -> Tuple[str, int, int, str]:
    return (finding.path, finding.line, finding.col, finding.rule)


# ---------------------------------------------------------------------------
# Per-file pass (cacheable)


@dataclass
class FileRecord:
    """The cacheable per-file products of pass 1."""

    module_path: str
    display_path: str
    findings: List[Finding] = field(default_factory=list)
    suppress_lines: Dict[int, Set[str]] = field(default_factory=dict)
    summary: Optional[ModuleSummary] = None
    error: Optional[str] = None

    def to_cache(self) -> Dict[str, Any]:
        return {
            "display_path": self.display_path,
            "findings": [
                {
                    "rule": f.rule,
                    "severity": f.severity,
                    "line": f.line,
                    "col": f.col,
                    "message": f.message,
                    "line_text": f.line_text,
                }
                for f in self.findings
            ],
            "suppress_lines": {
                str(line): sorted(rules)
                for line, rules in self.suppress_lines.items()
            },
            "summary": self.summary.to_dict() if self.summary else None,
            "error": self.error,
        }

    @classmethod
    def from_cache(cls, module_path: str, data: Dict[str, Any]) -> "FileRecord":
        display_path = str(data["display_path"])
        record = cls(module_path=module_path, display_path=display_path)
        record.findings = [
            Finding(
                rule=str(f["rule"]),
                severity=str(f["severity"]),
                path=display_path,
                line=int(f["line"]),
                col=int(f["col"]),
                message=str(f["message"]),
                line_text=str(f["line_text"]),
            )
            for f in data["findings"]
        ]
        record.suppress_lines = {
            int(line): set(rules)
            for line, rules in data["suppress_lines"].items()
        }
        if data.get("summary") is not None:
            record.summary = ModuleSummary.from_dict(data["summary"])
        record.error = data.get("error")
        return record


def _analyze_file(
    source: str,
    module_path: str,
    display_path: str,
    per_file_rules: Sequence[Rule],
) -> FileRecord:
    record = FileRecord(module_path=module_path, display_path=display_path)
    try:
        ctx = FileContext(module_path, source, display_path=display_path)
    except SyntaxError as exc:
        record.error = f"syntax error: {exc.msg} (line {exc.lineno})"
        return record
    for rule in per_file_rules:
        record.findings.extend(rule.run(ctx))
    record.suppress_lines = parse_suppressions(source, ctx.tree).lines()
    record.summary = summarize_module(module_path, display_path, source,
                                      tree=ctx.tree)
    return record


# ---------------------------------------------------------------------------
# Whole-program pass + suppression/fingerprint finalization


def _finalize(records: Sequence[FileRecord],
              program_rules: Sequence[Rule]) -> LintResult:
    result = LintResult(files_checked=len(records))
    by_display: Dict[str, FileRecord] = {}
    for record in records:
        by_display[record.display_path] = record
        if record.error is not None:
            result.errors.append((record.display_path, record.error))

    program_findings: List[Finding] = []
    if program_rules:
        summaries = {
            record.module_path: record.summary
            for record in records
            if record.summary is not None
        }
        if summaries:
            program = ProgramContext(summaries)
            for rule in program_rules:
                program_findings.extend(rule.check_program(program))

    for finding in sorted(program_findings, key=_sort_key):
        record = by_display.get(finding.path)
        if record is not None:
            record.findings.append(finding)
        else:  # pragma: no cover - program rules anchor at known files
            result.findings.append(finding)

    for record in records:
        suppressions = SuppressionMap()
        for line, rules in record.suppress_lines.items():
            suppressions.add(line, set(rules))
        for finding in sorted(record.findings, key=_sort_key):
            if suppressions.is_suppressed(finding.rule, finding.line):
                result.suppressed.append(finding)
            else:
                result.findings.append(finding)

    result.findings.sort(key=_sort_key)
    result.suppressed.sort(key=_sort_key)
    assign_fingerprints(result.findings)
    return result


def _split_rules(only: Sequence[str]) -> Tuple[List[Rule], List[Rule]]:
    rules = all_rules(only)
    per_file = [r for r in rules if not r.whole_program]
    program = [r for r in rules if r.whole_program]
    return per_file, program


def lint_source(
    source: str,
    module_path: str,
    only: Sequence[str] = (),
    display_path: str = "",
) -> LintResult:
    """Lint one in-memory source under a virtual module path.

    The whole-program rules see a one-module program, so cross-file
    fixtures exercise the call-graph logic on self-contained sources.
    """
    per_file, program = _split_rules(only)
    record = _analyze_file(source, module_path,
                           display_path or module_path, per_file)
    return _finalize([record], program)


def _iter_sources(root: pathlib.Path) -> Iterable[pathlib.Path]:
    for path in sorted(root.rglob("*.py")):
        if any(part in _SKIP_DIRS for part in path.parts):
            continue
        yield path


def _pool_analyze(
    args: Tuple[str, str, str, Tuple[str, ...]],
) -> Tuple[str, Dict[str, Any], str]:
    """Process-pool worker: analyze one file, return cache-shaped data.

    Takes and returns only picklable primitives; rules are
    reconstructed from their ids inside the worker (the registry
    repopulates on import).  The ``to_cache()`` dict round-trips
    through :meth:`FileRecord.from_cache` in the parent — the exact
    path every warm cache hit already takes, so parallel output is
    byte-identical to serial.
    """
    path_str, module_path, display, rule_ids = args
    per_file = [r for r in all_rules(list(rule_ids))
                if not r.whole_program]
    source = pathlib.Path(path_str).read_text(encoding="utf-8")
    record = _analyze_file(source, module_path, display, per_file)
    return module_path, record.to_cache(), source


def _collect_records(
    pkg_root: pathlib.Path,
    per_file: Sequence[Rule],
    cache: Optional[AnalysisCache],
    display_base: str,
    jobs: int,
) -> List[FileRecord]:
    """The per-file pass: cache hits in-process, misses possibly pooled.

    With ``jobs > 1`` the misses fan out over a process pool while the
    whole-program pass (and the cache itself) stay in the parent.
    Results are reassembled in discovery order, so findings,
    fingerprints and the saved cache are byte-identical to a serial
    run.
    """
    work: List[Tuple[pathlib.Path, str, str]] = []
    for path in _iter_sources(pkg_root):
        module_path = path.relative_to(pkg_root).as_posix()
        display = f"{display_base}/{module_path}" if display_base else module_path
        work.append((path, module_path, display))

    records: Dict[str, FileRecord] = {}
    misses: List[Tuple[pathlib.Path, str, str]] = []
    for path, module_path, display in work:
        if cache is not None:
            cached = cache.lookup(module_path, path)
            if cached is not None:
                try:
                    records[module_path] = FileRecord.from_cache(
                        module_path, cached)
                    continue
                except (KeyError, TypeError, ValueError):
                    pass  # corrupt entry: fall through and re-analyze
        misses.append((path, module_path, display))

    if jobs > 1 and len(misses) > 1:
        from concurrent.futures import ProcessPoolExecutor

        rule_ids = tuple(r.rule_id for r in per_file)
        pool_args = [(str(path), module_path, display, rule_ids)
                     for path, module_path, display in misses]
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            for (path, _mp, _display), (module_path, data, source) in zip(
                    misses, pool.map(_pool_analyze, pool_args)):
                records[module_path] = FileRecord.from_cache(module_path, data)
                if cache is not None:
                    cache.store(module_path, path, source, data)
    else:
        for path, module_path, display in misses:
            source = path.read_text(encoding="utf-8")
            record = _analyze_file(source, module_path, display, per_file)
            records[module_path] = record
            if cache is not None:
                cache.store(module_path, path, source, record.to_cache())

    if cache is not None:
        cache.save()
    return [records[module_path] for _path, module_path, _display in work]


def _make_cache(
    cache_dir: Optional[Union[str, pathlib.Path]],
    per_file: Sequence[Rule],
    program: Sequence[Rule],
) -> Optional[AnalysisCache]:
    if cache_dir is None:
        return None
    # The signature names the active rules AND stamps the dataflow
    # layer (cfg + solvers): bumping ANALYSIS_VERSION invalidates
    # every per-file entry, since cached findings/summaries embed
    # CFG-derived verdicts.  The lockset layer is stamped through
    # CACHE_VERSION: its evidence lives in the summary schema itself.
    signature = ",".join(
        [r.rule_id for r in list(per_file) + list(program)]
        + [f"dataflow={ANALYSIS_VERSION}"]
    )
    return AnalysisCache(pathlib.Path(cache_dir), signature)


def lint_package(
    root: Optional[Union[str, pathlib.Path]] = None,
    only: Sequence[str] = (),
    display_base: str = "src/repro",
    cache_dir: Optional[Union[str, pathlib.Path]] = None,
    jobs: int = 1,
) -> LintResult:
    """Lint every python file under ``root`` (default: the repro package).

    ``display_base`` prefixes reported paths so findings render as
    repo-relative (``src/repro/core/basic.py:12``) regardless of where
    the package is installed.  ``cache_dir`` enables the per-file
    analysis cache; the whole-program pass always re-runs.  ``jobs``
    parallelizes the per-file pass over a process pool (default 1:
    serial, and the output is byte-identical either way).
    """
    pkg_root = pathlib.Path(root) if root is not None else default_package_root()
    per_file, program = _split_rules(only)
    cache = _make_cache(cache_dir, per_file, program)
    records = _collect_records(pkg_root, per_file, cache, display_base, jobs)
    return _finalize(records, program)


def compute_guards(
    root: Optional[Union[str, pathlib.Path]] = None,
    cache_dir: Optional[Union[str, pathlib.Path]] = None,
    jobs: int = 1,
) -> List[GuardRow]:
    """The inferred guarded-by table for the package under ``root``.

    Runs the same per-file pass as :func:`lint_package` (sharing its
    cache — the summaries carry all the evidence), links the program
    and returns the lockset layer's attribute → protecting-lock table.
    """
    pkg_root = pathlib.Path(root) if root is not None else default_package_root()
    per_file, program = _split_rules(())
    cache = _make_cache(cache_dir, per_file, program)
    records = _collect_records(pkg_root, per_file, cache, "src/repro", jobs)
    summaries = {
        record.module_path: record.summary
        for record in records
        if record.summary is not None
    }
    if not summaries:
        return []
    return LocksetAnalysis(ProgramContext(summaries)).guard_table()
