"""mtime+content-keyed cache for the reprolint analysis pass.

The whole-program pass parses and summarizes every file under
``src/repro`` on each run; for pre-commit use that cost must not be
paid twice for unchanged files.  :class:`AnalysisCache` persists the
per-file products — raw findings, the suppression line map, and the
serialized :class:`~repro.analysis.callgraph.ModuleSummary` — keyed by
``(mtime_ns, size)`` with a content-hash fallback, so a ``touch``
without an edit re-keys instead of re-parsing.

Invalidation is deliberately coarse where correctness wants it:

* the whole cache is discarded when the schema version or the set of
  per-file rules that produced it changes (``--rules`` subsets get
  their own signature, so a full run never reads a subset's cache);
* a file entry is discarded when neither its ``(mtime_ns, size)`` nor
  its SHA-256 matches the file on disk.

Only *per-file* products are cached.  The call-graph link and the
whole-program rules always re-run — they are cheap relative to
parsing, and caching them would make invalidation cross-file.

The cache document is one JSON file inside ``--cache-dir`` (default
``.reprolint-cache/``), written atomically (temp file + ``os.replace``)
so an interrupted lint can never corrupt it.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from typing import Any, Dict, Optional

__all__ = ["AnalysisCache", "CACHE_VERSION"]

# 2: module summaries grew CFG-derived resource lifecycle verdicts
#    (ResourceFact) for the dataflow layer — v1 entries lack them.
# 3: summaries grew attribute-access records, per-call locksets and
#    spawn targets (AttrAccess) for the lockset layer — v2 entries
#    lack them.
CACHE_VERSION = 3
_CACHE_FILE = "reprolint-cache.json"


class AnalysisCache:
    """Load-once / save-once per-file result cache for one lint run."""

    def __init__(self, cache_dir: pathlib.Path, rules_signature: str):
        self.path = pathlib.Path(cache_dir) / _CACHE_FILE
        self.rules_signature = rules_signature
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._dirty = False
        self.hits = 0
        self.misses = 0
        self._load()

    def _load(self) -> None:
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(data, dict):
            return
        if (data.get("tool") != "reprolint-cache"
                or data.get("version") != CACHE_VERSION
                or data.get("rules") != self.rules_signature):
            return
        entries = data.get("entries")
        if isinstance(entries, dict):
            self._entries = entries

    # ------------------------------------------------------------------
    def lookup(self, module_path: str,
               path: pathlib.Path) -> Optional[Dict[str, Any]]:
        """The cached record for ``module_path``, or None on a miss.

        Fast path compares ``(mtime_ns, size)`` without reading the
        file; on mismatch the content hash decides, so builds that
        restore mtimes (or ``touch`` without an edit) still hit.
        """
        entry = self._entries.get(module_path)
        if entry is None:
            self.misses += 1
            return None
        try:
            stat = path.stat()
        except OSError:
            self.misses += 1
            return None
        if (entry.get("mtime_ns") == stat.st_mtime_ns
                and entry.get("size") == stat.st_size):
            self.hits += 1
            record = entry.get("record")
            return record if isinstance(record, dict) else None
        try:
            digest = _sha256(path.read_bytes())
        except OSError:
            self.misses += 1
            return None
        if entry.get("sha256") == digest:
            entry["mtime_ns"] = stat.st_mtime_ns
            entry["size"] = stat.st_size
            self._dirty = True
            self.hits += 1
            record = entry.get("record")
            return record if isinstance(record, dict) else None
        self.misses += 1
        return None

    def store(self, module_path: str, path: pathlib.Path, source: str,
              record: Dict[str, Any]) -> None:
        try:
            stat = path.stat()
            mtime_ns, size = stat.st_mtime_ns, stat.st_size
        except OSError:
            mtime_ns, size = 0, len(source.encode("utf-8"))
        self._entries[module_path] = {
            "mtime_ns": mtime_ns,
            "size": size,
            "sha256": _sha256(source.encode("utf-8")),
            "record": record,
        }
        self._dirty = True

    def save(self) -> None:
        """Atomically persist the cache (no-op when nothing changed)."""
        if not self._dirty:
            return
        document = {
            "tool": "reprolint-cache",
            "version": CACHE_VERSION,
            "rules": self.rules_signature,
            "entries": self._entries,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(".tmp")
        try:
            tmp.write_text(json.dumps(document, sort_keys=True),
                           encoding="utf-8")
            os.replace(tmp, self.path)
        except OSError:
            # A read-only checkout must not fail the lint.
            try:
                tmp.unlink()
            except OSError:
                pass


def _sha256(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()
