"""reprolint — AST-based invariant linter for the detection stack.

The package enforces, statically, the project invariants that the
test-suite can only check dynamically (and therefore only on the paths
tests happen to exercise):

* **REP001 backend-purity** — rating storage is reached through the
  :class:`~repro.ratings.matrix.RatingMatrix` /
  :class:`~repro.ratings.backends.MatrixBackend` facade;
* **REP002 ops-discipline** — matrix sweeps in ``core/`` charge the
  shared :class:`~repro.util.counters.OpCounter` on *every* call path
  (interprocedural: a sweep in a private helper is fine when each
  public entry point that reaches it charges);
* **REP003 lock-discipline** — shared-state writes in ``service/``
  happen under the owning lock (or in ``*_locked`` methods);
* **REP004 determinism** — no ambient randomness or wall-clock reads
  in the seeded simulation/detection layers;
* **REP005 schema-versioning** — persisted JSON artifacts go through
  the versioned schema writers;
* **REP006 lock-order** — lock acquisitions nest in one global order
  across the whole call graph (cycles are potential deadlocks);
* **REP007 persist-safety** — WAL / snapshot / baseline writes are
  append-only, atomic (write-then-``os.replace``) or try/finally
  guarded;
* **REP008 exception-safe-mutation** — a statement in ``service/``
  that can raise between shared-state writes, outside any ``try``,
  violates the zero-partial-state (all-or-nothing 429) contract;
* **REP009 resource-lifecycle** — mmap/``open``/``Pipe``/``Queue``/
  ``SharedMemory``/tmp-file acquisitions are released on every CFG
  path (``with``, ``close()`` in ``finally``, or a first-party
  hand-off);
* **REP010 input-taint** — HTTP request fields reach filesystem or
  shard/epoch-index sinks only through a validator.

REP002, REP006 and REP009 are *whole-program* rules: the engine
summarises every file
(:func:`~repro.analysis.callgraph.summarize_module`), links the
summaries into a :class:`~repro.analysis.callgraph.ProgramContext`
call graph, and runs them once over the linked program.  REP008 and
REP010 are path-sensitive: they run dataflow fixpoints
(:mod:`repro.analysis.dataflow`) over per-function control-flow
graphs (:mod:`repro.analysis.cfg`).  Per-file summaries are cached on
disk (:class:`~repro.analysis.cache.AnalysisCache`) keyed by content
hash and a signature covering the registered-rule set plus the
dataflow layer version.

Entry points: ``repro lint`` (and ``tools/reprolint``).  See
docs/STATIC_ANALYSIS.md for the rule catalogue, suppression syntax and
the baseline workflow.
"""

from repro.analysis.baseline import Baseline, BaselineError, split_by_baseline
from repro.analysis.cache import AnalysisCache
from repro.analysis.callgraph import (
    ModuleSummary,
    ProgramContext,
    summarize_module,
)
from repro.analysis.engine import LintResult, lint_package, lint_source
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, all_rules, register, rule_index
from repro.analysis.suppress import SuppressionMap, parse_suppressions

__all__ = [
    "AnalysisCache",
    "Baseline",
    "BaselineError",
    "Finding",
    "LintResult",
    "ModuleSummary",
    "ProgramContext",
    "Rule",
    "Severity",
    "SuppressionMap",
    "all_rules",
    "lint_package",
    "lint_source",
    "parse_suppressions",
    "register",
    "rule_index",
    "split_by_baseline",
    "summarize_module",
]
