"""The ``repro lint`` command-line front end.

Exit codes
----------
0
    Clean: no new findings (or informational run without
    ``--fail-on-new``).
1
    New findings with ``--fail-on-new``, or files that failed to parse.
2
    Usage / baseline errors (unknown rule id, malformed baseline …).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional, Sequence

from repro.analysis.baseline import (
    Baseline,
    BaselineError,
    DEFAULT_BASELINE_NAME,
    split_by_baseline,
)
from repro.analysis.engine import default_package_root, lint_package
from repro.analysis.registry import all_rules
from repro.analysis.reporter import render_json, render_text
from repro.errors import ReproError

__all__ = ["add_lint_arguments", "run_lint", "main"]


def _default_baseline_path() -> pathlib.Path:
    """``.reprolint-baseline.json`` next to the source tree, else cwd.

    Prefers the repository root inferred from the package location
    (``src/repro`` → repo root two levels up) so the command works from
    any directory of a source checkout; falls back to the current
    directory for installed copies.
    """
    pkg_root = default_package_root()
    candidate = pkg_root.parents[1] / DEFAULT_BASELINE_NAME
    if candidate.exists():
        return candidate
    return pathlib.Path.cwd() / DEFAULT_BASELINE_NAME


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--format", choices=["text", "json"], default="text",
                        help="report format (default: text)")
    parser.add_argument("--rules", default="",
                        help="comma-separated rule ids to run "
                             "(default: every registered rule)")
    parser.add_argument("--baseline", default=None,
                        help=f"baseline file (default: "
                             f"{DEFAULT_BASELINE_NAME} at the repo root)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline: every finding is 'new'")
    parser.add_argument("--fail-on-new", action="store_true",
                        help="exit 1 when findings outside the baseline "
                             "exist (the CI gate)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="accept the current findings as the baseline "
                             "and rewrite the file")
    parser.add_argument("--show-baselined", action="store_true",
                        help="also print baselined findings (text format)")
    parser.add_argument("--root", default=None,
                        help="package directory to lint "
                             "(default: the installed repro package)")
    parser.add_argument("--explain", action="store_true",
                        help="describe each rule's invariant and exit")


def _explain(only: Sequence[str]) -> int:
    for rule in all_rules(only):
        scope = ", ".join(rule.scope) if rule.scope else "src/repro (all)"
        print(f"{rule.rule_id} {rule.title} [{rule.severity}]")
        print(f"  scope: {scope}")
        if rule.exclude:
            print(f"  exempt: {', '.join(rule.exclude)}")
        print(f"  {rule.rationale}")
        print()
    return 0


def run_lint(args: argparse.Namespace) -> int:
    only: List[str] = [r.strip() for r in args.rules.split(",") if r.strip()]
    try:
        if args.explain:
            return _explain(only)
        result = lint_package(root=args.root, only=only)

        baseline_path = (pathlib.Path(args.baseline) if args.baseline
                         else _default_baseline_path())
        if args.write_baseline:
            Baseline.from_findings(result.findings).save(baseline_path)
            print(f"wrote {baseline_path} "
                  f"({len(result.findings)} accepted finding(s))")
            return 0

        baseline: Optional[Baseline] = None
        if not args.no_baseline and baseline_path.exists():
            baseline = Baseline.load(baseline_path)
            if only:
                # A rule filter must not report other rules' baseline
                # entries as stale — they simply did not run.
                baseline = Baseline(entries=[
                    e for e in baseline.entries if e.get("rule") in set(only)
                ])
    except (BaselineError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    new, baselined, stale = split_by_baseline(result.findings, baseline)
    if args.format == "json":
        print(render_json(result, new, baselined, stale, baseline=baseline))
    else:
        print(render_text(result, new, baselined, stale,
                          show_baselined=args.show_baselined))
    if result.errors:
        return 1
    if args.fail_on_new and new:
        return 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="AST-based invariant linter for the repro package",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
