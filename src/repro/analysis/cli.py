"""The ``repro lint`` command-line front end.

Exit codes
----------
0
    Clean: no new findings (or informational run without
    ``--fail-on-new``).
1
    New findings with ``--fail-on-new``, or files that failed to parse.
2
    Usage / baseline errors (unknown rule id, malformed baseline …).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
from typing import List, Optional, Sequence, Set

from repro.analysis.baseline import (
    Baseline,
    BaselineError,
    DEFAULT_BASELINE_NAME,
    split_by_baseline,
)
from repro.analysis.engine import (
    LintResult,
    compute_guards,
    default_package_root,
    lint_package,
)
from repro.analysis.registry import all_rules
from repro.analysis.reporter import render_json, render_sarif, render_text
from repro.errors import ReproError

__all__ = ["add_lint_arguments", "run_lint", "main"]


def _default_baseline_path() -> pathlib.Path:
    """``.reprolint-baseline.json`` next to the source tree, else cwd.

    Prefers the repository root inferred from the package location
    (``src/repro`` → repo root two levels up) so the command works from
    any directory of a source checkout; falls back to the current
    directory for installed copies.
    """
    pkg_root = default_package_root()
    candidate = pkg_root.parents[1] / DEFAULT_BASELINE_NAME
    if candidate.exists():
        return candidate
    return pathlib.Path.cwd() / DEFAULT_BASELINE_NAME


def _default_cache_dir() -> pathlib.Path:
    """``.reprolint-cache/`` next to the baseline (repo root or cwd)."""
    return _default_baseline_path().parent / ".reprolint-cache"


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--format", choices=["text", "json", "sarif"],
                        default="text",
                        help="report format (default: text)")
    parser.add_argument("--rules", default="",
                        help="comma-separated rule ids to run "
                             "(default: every registered rule)")
    parser.add_argument("--baseline", default=None,
                        help=f"baseline file (default: "
                             f"{DEFAULT_BASELINE_NAME} at the repo root)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline: every finding is 'new'")
    parser.add_argument("--fail-on-new", action="store_true",
                        help="exit 1 when findings outside the baseline "
                             "exist (the CI gate)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="accept the current findings as the baseline "
                             "and rewrite the file")
    parser.add_argument("--prune-baseline", action="store_true",
                        help="drop stale baseline entries (fixed findings); "
                             "dry-run unless --yes is given")
    parser.add_argument("--yes", action="store_true",
                        help="apply --prune-baseline instead of dry-running")
    parser.add_argument("--show-baselined", action="store_true",
                        help="also print baselined findings (text format)")
    parser.add_argument("--changed", nargs="?", const="HEAD", default=None,
                        metavar="REF",
                        help="only report findings in files changed vs the "
                             "given git ref (default REF: HEAD) plus "
                             "untracked files; unchanged files still come "
                             "from the cache, so the pre-push loop is "
                             "sub-second")
    parser.add_argument("--root", default=None,
                        help="package directory to lint "
                             "(default: the installed repro package)")
    parser.add_argument("--cache-dir", default=None,
                        help="analysis cache directory (default: "
                             ".reprolint-cache/ at the repo root)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the per-file analysis cache")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="parallelize the per-file pass over N "
                             "processes (default 1; output is "
                             "byte-identical at any N)")
    parser.add_argument("--guards", action="store_true",
                        help="print the inferred guarded-by table "
                             "(attribute -> protecting lock -> access "
                             "sites) instead of findings")
    parser.add_argument("--explain", action="store_true",
                        help="describe each rule's invariant and exit")


def _changed_files(ref: str,
                   root: Optional[pathlib.Path] = None) -> Set[str]:
    """Repo-relative paths changed vs ``ref``, plus untracked files.

    Runs git at the repo root (where the baseline lives) so the
    reported names line up with finding display paths
    (``src/repro/...``).  Statuses are honoured: renames (``R``, with
    ``-M`` detection) contribute the *new* path — the file is linted
    where it lives now — and deletions (``D``) contribute nothing,
    there is no file left to lint; stale baseline entries for a
    deleted file simply stay out of the diff-scoped view.
    """
    if root is None:
        root = _default_baseline_path().parent

    def run(*argv: str) -> List[str]:
        proc = subprocess.run(
            ["git", *argv], cwd=root, capture_output=True, text=True,
        )
        if proc.returncode != 0:
            detail = proc.stderr.strip() or proc.stdout.strip()
            raise ReproError(f"--changed: git {' '.join(argv)} "
                             f"failed: {detail}")
        return [line.strip() for line in proc.stdout.splitlines()
                if line.strip()]

    changed: Set[str] = set()
    for line in run("diff", "--name-status", "-M", ref, "--"):
        parts = line.split("\t")
        status = parts[0]
        if status.startswith(("R", "C")) and len(parts) >= 3:
            changed.add(parts[2])       # renamed/copied: the new path
        elif status.startswith("D"):
            continue                    # deleted: nothing left to lint
        elif len(parts) >= 2:
            changed.add(parts[1])
    changed.update(run("ls-files", "--others", "--exclude-standard"))
    return changed


def _explain(only: Sequence[str]) -> int:
    for rule in all_rules(only):
        scope = ", ".join(rule.scope) if rule.scope else "src/repro (all)"
        print(f"{rule.rule_id} {rule.title} [{rule.severity}]")
        print(f"  scope: {scope}")
        if rule.exclude:
            print(f"  exempt: {', '.join(rule.exclude)}")
        print(f"  {rule.rationale}")
        print()
    return 0


def _print_guards(args: argparse.Namespace,
                  cache_dir: Optional[pathlib.Path]) -> int:
    """Render the inferred guarded-by table (text or json)."""
    if args.format == "sarif":
        print("error: --guards supports the text and json formats only",
              file=sys.stderr)
        return 2
    rows = compute_guards(root=args.root, cache_dir=cache_dir,
                          jobs=args.jobs)
    if args.format == "json":
        print(json.dumps(
            {"tool": "reprolint", "guards": [row.to_dict() for row in rows]},
            indent=2, sort_keys=True))
        return 0
    if not rows:
        print("guarded-by table: no shared attributes found")
        return 0
    print(f"guarded-by table ({len(rows)} shared attribute(s))")
    current = None
    for row in rows:
        head = (row.display_path, row.cls)
        if head != current:
            current = head
            print(f"\n{row.display_path} {row.cls}")
        guard = ", ".join(row.guards) if row.guards else "(unguarded!)"
        print(f"  {row.attr:<28} {guard:<20} "
              f"{row.sites} site(s), first {row.first_site}")
    return 0


def run_lint(args: argparse.Namespace) -> int:
    only: List[str] = [r.strip() for r in args.rules.split(",") if r.strip()]
    try:
        if args.explain:
            return _explain(only)
        if args.prune_baseline and args.write_baseline:
            print("error: --prune-baseline and --write-baseline are "
                  "mutually exclusive", file=sys.stderr)
            return 2
        if args.changed is not None and (args.write_baseline
                                         or args.prune_baseline):
            # Rewriting the baseline from a diff-scoped view would
            # drop every unchanged file's accepted debt.
            print("error: --changed cannot be combined with "
                  "--write-baseline/--prune-baseline", file=sys.stderr)
            return 2
        cache_dir: Optional[pathlib.Path] = None
        if not args.no_cache:
            cache_dir = (pathlib.Path(args.cache_dir) if args.cache_dir
                         else _default_cache_dir())
        if args.guards:
            return _print_guards(args, cache_dir)
        result = lint_package(root=args.root, only=only, cache_dir=cache_dir,
                              jobs=args.jobs)
        changed: Optional[Set[str]] = None
        if args.changed is not None:
            changed = _changed_files(args.changed)
            result = result.restricted_to(changed)

        baseline_path = (pathlib.Path(args.baseline) if args.baseline
                         else _default_baseline_path())
        if args.write_baseline:
            Baseline.from_findings(result.findings).save(baseline_path)
            print(f"wrote {baseline_path} "
                  f"({len(result.findings)} accepted finding(s))")
            return 0

        baseline: Optional[Baseline] = None
        if not args.no_baseline and baseline_path.exists():
            baseline = Baseline.load(baseline_path)
            if only:
                # A rule filter must not report other rules' baseline
                # entries as stale — they simply did not run.
                baseline = Baseline(entries=[
                    e for e in baseline.entries if e.get("rule") in set(only)
                ])
            if changed is not None:
                # Same for --changed: unchanged files' entries did not
                # get a chance to match, so they are not stale.
                baseline = Baseline(entries=[
                    e for e in baseline.entries if e.get("file") in changed
                ])

        if args.prune_baseline:
            return _prune_baseline(result, baseline, baseline_path,
                                   apply=args.yes, only=only)
    except (BaselineError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    new, baselined, stale = split_by_baseline(result.findings, baseline)
    if args.format == "json":
        print(render_json(result, new, baselined, stale, baseline=baseline))
    elif args.format == "sarif":
        print(render_sarif(result, new, baselined))
    else:
        print(render_text(result, new, baselined, stale,
                          show_baselined=args.show_baselined))
    if result.errors:
        return 1
    if args.fail_on_new and new:
        return 1
    return 0


def _prune_baseline(result: "LintResult", baseline: Optional[Baseline],
                    baseline_path: pathlib.Path, apply: bool,
                    only: Sequence[str]) -> int:
    """Drop stale fingerprints from the baseline (dry-run by default)."""
    if baseline is None:
        print(f"no baseline at {baseline_path}; nothing to prune")
        return 0
    if only:
        # Pruning needs the full picture: a --rules subset would see
        # every other rule's entries as stale and delete live debt.
        print("error: --prune-baseline cannot be combined with --rules",
              file=sys.stderr)
        return 2
    _new, _baselined, stale = split_by_baseline(result.findings, baseline)
    if not stale:
        print(f"{baseline_path}: no stale entries "
              f"({len(baseline)} entr{'y' if len(baseline) == 1 else 'ies'} "
              f"all still occur)")
        return 0
    for entry in stale:
        print(f"stale: {entry.get('rule')} at "
              f"{entry.get('file')}:{entry.get('line')} "
              f"[{entry.get('fingerprint')}]")
    if not apply:
        print(f"dry run: would drop {len(stale)} of {len(baseline)} "
              f"entr{'y' if len(baseline) == 1 else 'ies'}; "
              f"re-run with --yes to apply")
        return 0
    pruned = baseline.pruned(stale)
    pruned.save(baseline_path)
    print(f"wrote {baseline_path} ({len(baseline)} -> {len(pruned)} "
          f"entr{'y' if len(pruned) == 1 else 'ies'}, "
          f"{len(stale)} stale dropped)")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="AST-based invariant linter for the repro package",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
