"""Finding model for the reprolint static-analysis pass.

A :class:`Finding` is one rule violation anchored to a ``file:line``
location.  Findings carry a *fingerprint* — a content-based identity
that survives unrelated edits moving the line up or down — which is
what the committed baseline (:mod:`repro.analysis.baseline`) stores:
pre-existing findings keep matching their baseline entry after
refactors elsewhere in the file, while a genuinely new violation has no
matching fingerprint and fails ``repro lint --fail-on-new``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["Severity", "Finding", "assign_fingerprints"]


class Severity:
    """Finding severity levels, ordered ``ERROR > WARNING``."""

    ERROR = "error"
    WARNING = "warning"

    _ORDER = {ERROR: 0, WARNING: 1}

    @classmethod
    def rank(cls, severity: str) -> int:
        """Sort key: lower is more severe."""
        return cls._ORDER.get(severity, len(cls._ORDER))


@dataclass
class Finding:
    """One rule violation at a concrete source location.

    ``fingerprint`` is filled by :func:`assign_fingerprints` once the
    whole file has been linted (it depends on how many findings share
    the same rule + line content, so it cannot be computed per-node).
    """

    rule: str
    severity: str
    path: str              # repo-relative posix path
    line: int              # 1-based
    col: int               # 0-based (ast convention)
    message: str
    line_text: str = ""    # stripped source line, for fingerprinting
    fingerprint: str = field(default="", compare=False)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def render(self) -> str:
        """The one-line text-reporter form."""
        return f"{self.location()}: {self.rule} {self.severity}: {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "file": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }


def _digest(rule: str, path: str, line_text: str, occurrence: int) -> str:
    basis = f"{rule}|{path}|{line_text}|{occurrence}"
    return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:16]


def assign_fingerprints(findings: List[Finding]) -> None:
    """Fill each finding's content-based fingerprint, in place.

    Identity is ``(rule, file, stripped line text, occurrence index)``
    — deliberately *not* the line number, so editing an unrelated part
    of the file does not orphan every baseline entry below the edit.
    The occurrence index disambiguates identical violations on
    identical lines (e.g. two ``json.dump`` calls in one module).
    """
    seen: Dict[str, int] = {}
    for finding in findings:
        key = f"{finding.rule}|{finding.path}|{finding.line_text}"
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        finding.fingerprint = _digest(
            finding.rule, finding.path, finding.line_text, occurrence
        )
