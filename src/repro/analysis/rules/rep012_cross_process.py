"""REP012 — cross-process sharing: child and parent state is disjoint.

Invariant (docs/OPERATIONS.md): state touched both inside a
``Process`` target's code (the child) and in the front end (the
parent) must flow through a ``Queue`` or ``Pipe`` — never a plain
attribute.  A plain attribute *looks* shared but is copied at spawn:
the child mutates its copy, the parent reads stale state, and nothing
crashes — the worst kind of bug the process-per-shard service is one
refactor away from.

Construction, on the whole-program lockset analysis
(:mod:`repro.analysis.lockset`):

* **child-side code** is the transitive closure, over resolved call
  edges, of every callable handed to a ``Process(target=...)``;
* only classes whose *instances* actually cross the spawn are
  eligible: a bound method of the class handed to ``Process`` copies
  the whole object into the child.  Classes merely used on both sides
  — each side constructing its own instance, like the WAL — never
  share an object, and flagging them would be object-insensitive
  noise;
* an attribute of an eligible class is flagged when it has a
  post-ctor access from a child-side method *and* from a parent-side
  method, unless the attribute is a sanctioned channel: its inferred
  type is a Queue/Pipe/Connection (or another process handle), or
  every cross-side access goes through an endpoint method (``put``/
  ``get``/``send``/``recv``/``close``/…);
* ctor-phase accesses are exempt — construction happens before the
  fork, so ctor writes are the one legitimate "both sides" state.

Findings: one **error** per plainly-shared attribute, witnessed by
one child-side and one parent-side access site.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.analysis.callgraph import ProgramContext
from repro.analysis.findings import Finding, Severity
from repro.analysis.lockset import (
    MEDIATION_METHODS,
    Access,
    LocksetAnalysis,
    mediated_type,
)
from repro.analysis.registry import Rule, register

__all__ = ["CrossProcessRule"]


@register
class CrossProcessRule(Rule):
    rule_id = "REP012"
    title = "cross-process-sharing"
    severity = Severity.ERROR
    rationale = (
        "State accessed both in Process-target (child) code and in "
        "the parent must be queue/Pipe-mediated: a plain attribute is "
        "silently copied at spawn, so child writes never reach the "
        "parent. Child code is the resolved-call closure of every "
        "Process target; only classes whose bound methods are Process "
        "targets (the instance is copied into the child) are eligible; "
        "queue/Pipe-typed attributes and endpoint-method accesses are "
        "the sanctioned channel."
    )
    scope = ("service/",)
    whole_program = True

    def check_program(self, program: ProgramContext) -> Iterator[Finding]:
        analysis = LocksetAnalysis(program)
        if not analysis.child_reachable:
            return
        for (module_path, cls) in sorted(analysis.by_class):
            if not any(module_path.startswith(p) for p in self.scope):
                continue
            if (module_path, cls) not in analysis.process_escaping:
                continue
            csum = program.modules[module_path].classes[cls]
            per_attr = analysis.by_class[(module_path, cls)]
            for attr in sorted(per_attr):
                if attr in csum.lock_attrs or mediated_type(csum, attr):
                    continue
                sides = self._split_sides(analysis, per_attr[attr])
                if sides is None:
                    continue
                child, parent = sides
                yield Finding(
                    rule=self.rule_id,
                    severity=self.severity,
                    path=child.display_path,
                    line=child.site.line,
                    col=child.site.col,
                    message=(
                        f"attribute '{attr}' of {cls} is touched in "
                        f"child-process code ({child.method} at "
                        f"{child.where()}) and in the parent "
                        f"({parent.method} at {parent.where()}) without "
                        f"queue/Pipe mediation — cross-process state "
                        f"must flow through a Queue or Pipe"
                    ),
                    line_text=child.site.text,
                )

    def _split_sides(
        self, analysis: LocksetAnalysis, accesses: List[Access],
    ) -> Optional[Tuple[Access, Access]]:
        """``(child access, parent access)`` witnessing plain sharing.

        Endpoint-method accesses are the mediated channel and witness
        nothing; ctor accesses predate the fork.
        """
        child: Optional[Access] = None
        parent: Optional[Access] = None
        for access in sorted(accesses,
                             key=lambda a: (a.display_path, a.site.line,
                                            a.site.col)):
            if access.in_ctor or access.via_method in MEDIATION_METHODS:
                continue
            if access.key in analysis.child_reachable:
                child = child or access
            else:
                parent = parent or access
        if child is not None and parent is not None:
            return child, parent
        return None
