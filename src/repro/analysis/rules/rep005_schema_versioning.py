"""REP005 — schema versioning: persisted artifacts go through schema modules.

Invariant (PR 1 WAL/snapshots, PR 2 bench harness): every artifact the
repo persists and later reloads — ``BENCH_*.json`` results, service
snapshots, WAL records — carries a schema version and round-trips
through a dedicated, versioned writer
(:mod:`repro.bench.schema`, :mod:`repro.service.snapshot`,
:mod:`repro.ratings.io`).  A raw ``json.dump`` elsewhere produces a
document with no version stamp, which the perf-regression gate and
snapshot recovery cannot validate or migrate.

The rule flags, outside the allow-listed schema modules:

* any ``json.dump(...)`` call (file-handle serialization);
* any ``*.write_text(...)`` / ``*.write(...)`` call whose arguments
  contain a ``json.dumps(...)`` call (string serialization being
  persisted in the same expression).

``json.dumps`` used for HTTP response bodies or logging is fine —
only the persist-in-the-same-expression pattern is flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import FileContext, Rule, register
from repro.analysis.rules._ast_util import attr_chain

__all__ = ["SchemaVersioningRule"]

_WRITE_METHODS = frozenset({"write_text", "write"})


def _is_json_dumps(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    chain = attr_chain(node.func)
    return bool(chain) and chain[-1] == "dumps" and (
        len(chain) == 1 or chain[-2] == "json"
    )


def _contains_json_dumps(node: ast.AST) -> bool:
    return any(_is_json_dumps(sub) for sub in ast.walk(node))


@register
class SchemaVersioningRule(Rule):
    rule_id = "REP005"
    title = "schema-versioning"
    severity = Severity.ERROR
    rationale = (
        "Persisted artifacts (BENCH results, snapshots, WAL) must "
        "carry a schema version and round-trip through the versioned "
        "writer so the CI perf gate and crash recovery can validate "
        "and migrate them; raw json.dump writes version-less documents."
    )
    exclude = (
        # The versioned writers themselves.
        "bench/schema.py",
        "service/snapshot.py",
        "ratings/io.py",
        # The linter's own baseline document (tool + version stamped).
        "analysis/baseline.py",
        # The analysis cache (tool + version stamped, atomic replace).
        "analysis/cache.py",
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if chain and chain[-1] == "dump" and (
                    len(chain) == 1 or chain[-2] == "json"):
                yield ctx.finding(
                    self, node,
                    "raw json.dump() outside a schema module — persist "
                    "through the versioned writer (repro.bench.schema / "
                    "repro.service.snapshot) so the artifact carries a "
                    "schema version",
                )
            elif (isinstance(node.func, ast.Attribute)
                  and node.func.attr in _WRITE_METHODS
                  and any(_contains_json_dumps(arg) for arg in node.args)):
                yield ctx.finding(
                    self, node,
                    f"'.{node.func.attr}(json.dumps(...))' persists an "
                    f"unversioned JSON document — route it through the "
                    f"versioned schema writer",
                )
