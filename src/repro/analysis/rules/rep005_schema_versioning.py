"""REP005 — schema versioning: persisted artifacts go through schema modules.

Invariant (PR 1 WAL/snapshots, PR 2 bench harness): every artifact the
repo persists and later reloads — ``BENCH_*.json`` results, service
snapshots, WAL records — carries a schema version and round-trips
through a dedicated, versioned writer
(:mod:`repro.bench.schema`, :mod:`repro.service.snapshot`,
:mod:`repro.ratings.io`).  A raw ``json.dump`` elsewhere produces a
document with no version stamp, which the perf-regression gate and
snapshot recovery cannot validate or migrate.

The rule flags, outside the allow-listed schema modules:

* any ``json.dump(...)`` call (file-handle serialization);
* any ``*.write_text(...)`` / ``*.write(...)`` call whose arguments
  contain a ``json.dumps(...)`` call (string serialization being
  persisted in the same expression);
* any ``*.write_text(name)`` / ``*.write(name)`` where ``name`` was
  bound from a ``json.dumps(...)`` expression earlier in the same
  function — the split header-then-persist pattern of the mmap image
  writer (PR 8).  The ``.write`` sink only counts in functions that
  also ``open(...)`` a file for writing, so handing a bound JSON body
  to a socket is not a persist.

``json.dumps`` used for HTTP response bodies or logging is fine —
neither pattern reaches a file there.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import FileContext, Rule, register
from repro.analysis.rules._ast_util import (
    attr_chain,
    iter_function_scopes,
    walk_scope,
)

__all__ = ["SchemaVersioningRule"]

_WRITE_METHODS = frozenset({"write_text", "write"})


def _is_json_dumps(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    chain = attr_chain(node.func)
    return bool(chain) and chain[-1] == "dumps" and (
        len(chain) == 1 or chain[-2] == "json"
    )


def _contains_json_dumps(node: ast.AST) -> bool:
    return any(_is_json_dumps(sub) for sub in ast.walk(node))


def _opens_file_for_write(node: ast.AST) -> bool:
    """True for ``open(..., "w"/"wb"/"x")`` / ``path.open("w")`` calls."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    is_open = (isinstance(func, ast.Name) and func.id == "open") or (
        isinstance(func, ast.Attribute) and func.attr == "open"
    )
    if not is_open:
        return False
    candidates = list(node.args[1:2] if isinstance(func, ast.Name)
                      else node.args[:1])
    candidates += [kw.value for kw in node.keywords if kw.arg == "mode"]
    return any(
        isinstance(arg, ast.Constant) and isinstance(arg.value, str)
        and arg.value[:1] in ("w", "x")
        for arg in candidates
    )


def _json_bound_names(body) -> frozenset:
    """Names assigned from an expression containing ``json.dumps``."""
    bound = set()
    for node in walk_scope(body):
        if isinstance(node, ast.Assign) and _contains_json_dumps(node.value):
            bound.update(t.id for t in node.targets
                         if isinstance(t, ast.Name))
        elif (isinstance(node, ast.AnnAssign) and node.value is not None
              and _contains_json_dumps(node.value)
              and isinstance(node.target, ast.Name)):
            bound.add(node.target.id)
    return frozenset(bound)


@register
class SchemaVersioningRule(Rule):
    rule_id = "REP005"
    title = "schema-versioning"
    severity = Severity.ERROR
    rationale = (
        "Persisted artifacts (BENCH results, snapshots, WAL) must "
        "carry a schema version and round-trip through the versioned "
        "writer so the CI perf gate and crash recovery can validate "
        "and migrate them; raw json.dump writes version-less documents."
    )
    exclude = (
        # The versioned writers themselves.
        "bench/schema.py",
        "service/snapshot.py",
        "ratings/io.py",
        # The binary image container: its JSON header lives behind the
        # REPM magic + IMAGE_FORMAT version stamp (write_image).
        "ratings/backends.py",
        # The linter's own baseline document (tool + version stamped).
        "analysis/baseline.py",
        # The analysis cache (tool + version stamped, atomic replace).
        "analysis/cache.py",
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if chain and chain[-1] == "dump" and (
                    len(chain) == 1 or chain[-2] == "json"):
                yield ctx.finding(
                    self, node,
                    "raw json.dump() outside a schema module — persist "
                    "through the versioned writer (repro.bench.schema / "
                    "repro.service.snapshot) so the artifact carries a "
                    "schema version",
                )
            elif (isinstance(node.func, ast.Attribute)
                  and node.func.attr in _WRITE_METHODS
                  and any(_contains_json_dumps(arg) for arg in node.args)):
                yield ctx.finding(
                    self, node,
                    f"'.{node.func.attr}(json.dumps(...))' persists an "
                    f"unversioned JSON document — route it through the "
                    f"versioned schema writer",
                )
        for scope in self._scopes(ctx.tree):
            yield from self._bound_persists(ctx, scope)

    @staticmethod
    def _scopes(tree: ast.Module):
        # walk_scope only prunes defs found *below* its starting nodes,
        # so drop top-level defs from the module scope ourselves.
        yield [stmt for stmt in tree.body
               if not isinstance(stmt, (ast.FunctionDef,
                                        ast.AsyncFunctionDef,
                                        ast.ClassDef))]
        for _cls, fn in iter_function_scopes(tree):
            yield fn.body

    def _bound_persists(self, ctx: FileContext,
                        body) -> Iterator[Finding]:
        """Flag persisting a name that was bound from ``json.dumps``."""
        bound = _json_bound_names(body)
        if not bound:
            return
        # ``.write`` is only a persist sink when this scope writes a
        # file; sockets and response streams stay out of scope.
        sinks = {"write_text"}
        if any(_opens_file_for_write(node) for node in walk_scope(body)):
            sinks.add("write")
        for node in walk_scope(body):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in sinks
                    and any(isinstance(arg, ast.Name) and arg.id in bound
                            for arg in node.args)):
                yield ctx.finding(
                    self, node,
                    f"'.{node.func.attr}(...)' persists a JSON document "
                    f"bound from json.dumps(...) with no schema version — "
                    f"route it through the versioned schema writer",
                )
