"""The bundled project-specific rules.

Importing this package registers every rule with
:mod:`repro.analysis.registry`.  Each module holds one rule so the
invariant's documentation lives next to the code enforcing it:

* :mod:`~repro.analysis.rules.rep001_backend_purity` — REP001
* :mod:`~repro.analysis.rules.rep002_ops_discipline` — REP002
* :mod:`~repro.analysis.rules.rep003_lock_discipline` — REP003
* :mod:`~repro.analysis.rules.rep004_determinism` — REP004
* :mod:`~repro.analysis.rules.rep005_schema_versioning` — REP005
* :mod:`~repro.analysis.rules.rep006_lock_order` — REP006
* :mod:`~repro.analysis.rules.rep007_persist_safety` — REP007
* :mod:`~repro.analysis.rules.rep008_exception_safety` — REP008
* :mod:`~repro.analysis.rules.rep009_resource_lifecycle` — REP009
* :mod:`~repro.analysis.rules.rep010_input_taint` — REP010
* :mod:`~repro.analysis.rules.rep011_inconsistent_guard` — REP011
* :mod:`~repro.analysis.rules.rep012_cross_process` — REP012

REP002, REP006, REP009, REP011 and REP012 are *whole-program* rules:
they run over the linked call graph
(:mod:`repro.analysis.callgraph`) instead of per file.  REP008 and
REP010 are per-file but *path-sensitive*: they run dataflow analyses
over the per-function CFG (:mod:`repro.analysis.cfg`,
:mod:`repro.analysis.dataflow`).  REP011 and REP012 additionally run
the lockset/guard-inference layer (:mod:`repro.analysis.lockset`).
"""

from repro.analysis.rules import (  # noqa: F401
    rep001_backend_purity,
    rep002_ops_discipline,
    rep003_lock_discipline,
    rep004_determinism,
    rep005_schema_versioning,
    rep006_lock_order,
    rep007_persist_safety,
    rep008_exception_safety,
    rep009_resource_lifecycle,
    rep010_input_taint,
    rep011_inconsistent_guard,
    rep012_cross_process,
)

__all__ = [
    "rep001_backend_purity",
    "rep002_ops_discipline",
    "rep003_lock_discipline",
    "rep004_determinism",
    "rep005_schema_versioning",
    "rep006_lock_order",
    "rep007_persist_safety",
    "rep008_exception_safety",
    "rep009_resource_lifecycle",
    "rep010_input_taint",
    "rep011_inconsistent_guard",
    "rep012_cross_process",
]
