"""The bundled project-specific rules.

Importing this package registers every rule with
:mod:`repro.analysis.registry`.  Each module holds one rule so the
invariant's documentation lives next to the code enforcing it:

* :mod:`~repro.analysis.rules.rep001_backend_purity` — REP001
* :mod:`~repro.analysis.rules.rep002_ops_discipline` — REP002
* :mod:`~repro.analysis.rules.rep003_lock_discipline` — REP003
* :mod:`~repro.analysis.rules.rep004_determinism` — REP004
* :mod:`~repro.analysis.rules.rep005_schema_versioning` — REP005
* :mod:`~repro.analysis.rules.rep006_lock_order` — REP006
* :mod:`~repro.analysis.rules.rep007_persist_safety` — REP007

REP002 and REP006 are *whole-program* rules: they run over the linked
call graph (:mod:`repro.analysis.callgraph`) instead of per file.
"""

from repro.analysis.rules import (  # noqa: F401
    rep001_backend_purity,
    rep002_ops_discipline,
    rep003_lock_discipline,
    rep004_determinism,
    rep005_schema_versioning,
    rep006_lock_order,
    rep007_persist_safety,
)

__all__ = [
    "rep001_backend_purity",
    "rep002_ops_discipline",
    "rep003_lock_discipline",
    "rep004_determinism",
    "rep005_schema_versioning",
    "rep006_lock_order",
    "rep007_persist_safety",
]
