"""REP003 — lock discipline in the sharded service.

Invariant (docs/SERVICE.md, PR 1): the service's concurrency model is
"one ingest lock + thread-confined shard state".  For any class in
``service/`` that *owns* a ``threading.Lock``/``RLock``, every write
to underscore-prefixed shared attributes (``self._epoch``,
``self._published`` …) outside ``__init__`` must happen inside a
``with self.<lock>:`` block — a statically visible critical section.
Methods named ``*_locked`` are exempt by convention: the suffix is the
project's documented marker for "caller holds the lock" (e.g.
``DetectionService._snapshot_locked``).

Classes that own no lock are not checked — thread-confined designs
(:class:`~repro.service.shard.ShardWorker`) synchronize through their
queue, which is the point of the confinement model.

The rule also flags *discarded thread handles* —
``threading.Thread(...).start()`` without binding the thread object —
because a thread nobody can ``join`` has no stop path and outlives
shutdown ordering.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import FileContext, Rule, register
from repro.analysis.rules._ast_util import attr_chain

__all__ = ["LockDisciplineRule"]

_LOCK_CTORS = frozenset({"Lock", "RLock"})


def _is_lock_ctor(node: ast.AST) -> bool:
    """``threading.Lock()`` / ``threading.RLock()`` / bare ``RLock()``."""
    if not isinstance(node, ast.Call):
        return False
    chain = attr_chain(node.func)
    if not chain:
        return False
    if len(chain) == 1:
        return chain[0] in _LOCK_CTORS
    return chain[-2] == "threading" and chain[-1] in _LOCK_CTORS


def _is_thread_ctor(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    chain = attr_chain(node.func)
    return bool(chain) and chain[-1] == "Thread"


def _self_underscore_target(target: ast.AST) -> Optional[str]:
    """Attribute name when ``target`` writes ``self._x`` (or into it)."""
    # Unwrap subscript/starred targets: self._a[k] = v mutates self._a.
    while isinstance(target, (ast.Subscript, ast.Starred)):
        target = target.value
    if isinstance(target, ast.Attribute):
        chain = attr_chain(target)
        if (chain and len(chain) == 2 and chain[0] == "self"
                and chain[1].startswith("_")):
            return chain[1]
    return None


class _MethodVisitor(ast.NodeVisitor):
    """Walk one method body tracking ``with self.<lock>:`` nesting."""

    def __init__(self, rule: "LockDisciplineRule", ctx: FileContext,
                 method: str, lock_attrs: Set[str]):
        self.rule = rule
        self.ctx = ctx
        self.method = method
        self.lock_attrs = lock_attrs
        self.depth = 0
        self.findings: List[Finding] = []

    # -- lock tracking -------------------------------------------------
    def visit_With(self, node: ast.With) -> None:
        holds = False
        for item in node.items:
            expr = item.context_expr
            # with self._lock: / with self._lock.acquire_timeout(...):
            chain = attr_chain(expr.func if isinstance(expr, ast.Call)
                               else expr)
            if (chain and chain[0] == "self"
                    and any(part in self.lock_attrs for part in chain[1:])):
                holds = True
        if holds:
            self.depth += 1
            self.generic_visit(node)
            self.depth -= 1
        else:
            self.generic_visit(node)

    # -- shared-state writes -------------------------------------------
    def _check_targets(self, node: ast.AST, targets: List[ast.AST]) -> None:
        if self.depth > 0:
            return
        for target in targets:
            attr = _self_underscore_target(target)
            if attr is None or attr in self.lock_attrs:
                continue
            self.findings.append(self.ctx.finding(
                self.rule, node,
                f"write to shared attribute 'self.{attr}' in "
                f"'{self.method}' outside 'with self."
                f"{sorted(self.lock_attrs)[0]}:' — hold the owning lock, "
                f"or mark the method '*_locked' if the caller does",
                severity=Severity.ERROR,
            ))

    def visit_Assign(self, node: ast.Assign) -> None:
        self._check_targets(node, list(node.targets))
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_targets(node, [node.target])
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_targets(node, [node.target])
        self.generic_visit(node)

    # Nested defs are separate scopes; do not descend.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


@register
class LockDisciplineRule(Rule):
    rule_id = "REP003"
    title = "lock-discipline"
    severity = Severity.ERROR
    rationale = (
        "The service's correctness argument is 'every shared-state "
        "mutation happens under the ingest lock; shard state is "
        "thread-confined'. A write outside a with-lock block breaks "
        "the argument statically even when today's call graph happens "
        "to hold the lock."
    )
    scope = ("service/",)

    def _lock_attrs(self, cls: ast.ClassDef) -> Set[str]:
        """Lock attributes assigned anywhere in the class body."""
        out: Set[str] = set()
        for node in ast.walk(cls):
            if isinstance(node, ast.Assign) and _is_lock_ctor(node.value):
                for target in node.targets:
                    chain = attr_chain(target)
                    if chain and len(chain) == 2 and chain[0] == "self":
                        out.add(chain[1])
        return out

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)
        yield from self._check_discarded_threads(ctx)

    def _check_class(self, ctx: FileContext,
                     cls: ast.ClassDef) -> Iterator[Finding]:
        lock_attrs = self._lock_attrs(cls)
        if not lock_attrs:
            return
        for stmt in cls.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name == "__init__" or stmt.name.endswith("_locked"):
                continue
            visitor = _MethodVisitor(self, ctx, stmt.name, lock_attrs)
            for sub in stmt.body:
                visitor.visit(sub)
            yield from visitor.findings

    def _check_discarded_threads(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            call: Optional[ast.Call] = None
            if isinstance(node, ast.Expr) and _is_thread_ctor(node.value):
                call = node.value
            elif (isinstance(node, ast.Call)
                  and isinstance(node.func, ast.Attribute)
                  and node.func.attr == "start"
                  and _is_thread_ctor(node.func.value)):
                call = node.func.value
            if call is not None:
                yield ctx.finding(
                    self, call,
                    "threading.Thread created without keeping a handle — "
                    "no join/stop path; bind it so shutdown can join",
                    severity=Severity.WARNING,
                )
