"""REP011 — inconsistent guard: shared state needs one consistent lock.

Invariant (docs/SERVICE.md): every mutable attribute of a lock-owning
service class is protected by a single lock held at *every* access —
readers included.  A "mostly guarded" attribute is a data race: the
one lock-free read can observe a half-applied update, and no test
reproduces it reliably under scheduling jitter.

The check is Eraser's lockset algorithm recast statically over the
whole-program lockset analysis (:mod:`repro.analysis.lockset`): per
shared attribute, intersect the may-hold locksets of every access
site; an empty intersection means no lock consistently protects it.
The established conventions shape what counts as an access site:

* ``__init__`` is construction — the object has not escaped its
  creating thread yet, so ctor-phase accesses are exempt;
* ``*_locked`` methods are entered with every class lock held (the
  documented caller-holds-the-lock convention), so their accesses are
  guarded by definition;
* except/finally bodies are rollback paths (REP008's domain) and are
  exempt here;
* attributes never written outside the ctor are configuration, not
  shared mutable state — read-only attrs need no guard;
* modules with a ``metrics`` path segment are exempt: the counter
  registry is documented as internally synchronized.

Findings: one **error** per unguarded shared attribute, anchored at
the first access whose lockset breaks the intersection, naming the
locks the other sites hold.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.analysis.callgraph import ProgramContext
from repro.analysis.findings import Finding, Severity
from repro.analysis.lockset import Access, LocksetAnalysis, exempt_module
from repro.analysis.registry import Rule, register

__all__ = ["InconsistentGuardRule"]


@register
class InconsistentGuardRule(Rule):
    rule_id = "REP011"
    title = "inconsistent-guard"
    severity = Severity.ERROR
    rationale = (
        "A shared attribute of a lock-owning service class must be "
        "read and written under one consistent lock: the attribute's "
        "guard is the intersection of the may-hold locksets across "
        "all access sites, and an empty intersection is a data race. "
        "Ctor-phase accesses, *_locked callees and handler rollbacks "
        "are exempt per the documented conventions."
    )
    scope = ("service/",)
    whole_program = True

    def check_program(self, program: ProgramContext) -> Iterator[Finding]:
        analysis = LocksetAnalysis(program)
        for (module_path, cls) in sorted(analysis.by_class):
            if not self._in_scope(module_path):
                continue
            summary = program.modules[module_path]
            if not summary.classes[cls].lock_attrs:
                continue        # no lock to be inconsistent about
            for attr in analysis.shared_attrs(module_path, cls):
                accesses = analysis.guarded_accesses(module_path, cls, attr)
                if not accesses:
                    continue
                guard = analysis.guard_of(accesses)
                if guard:
                    continue
                anchor = self._anchor(accesses)
                held_elsewhere = sorted({
                    analysis.render_lock(key, module_path, cls)
                    for access in accesses for key in access.lockset
                })
                if held_elsewhere:
                    detail = (
                        f"other sites hold {{{', '.join(held_elsewhere)}}} "
                        f"but no single lock covers all "
                        f"{len(accesses)} access site(s)"
                    )
                else:
                    detail = (
                        f"none of the {len(accesses)} access site(s) "
                        f"holds a lock"
                    )
                yield Finding(
                    rule=self.rule_id,
                    severity=self.severity,
                    path=anchor.display_path,
                    line=anchor.site.line,
                    col=anchor.site.col,
                    message=(
                        f"shared attribute '{attr}' of {cls} has no "
                        f"consistent guard: {anchor.kind} at "
                        f"{anchor.where()} is lock-free ({detail})"
                    ),
                    line_text=anchor.site.text,
                )

    def _in_scope(self, module_path: str) -> bool:
        if exempt_module(module_path):
            return False
        return any(module_path.startswith(prefix) for prefix in self.scope)

    @staticmethod
    def _anchor(accesses: List[Access]) -> Access:
        """The first access holding nothing — the site breaking the guard."""
        for access in accesses:
            if not access.lockset:
                return access
        return accesses[0]
