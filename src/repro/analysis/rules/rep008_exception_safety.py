"""REP008 — exception-safe shared-state mutation (the zero-trace 429).

Invariant (docs/SERVICE.md, PR 7): a rejected or failed operation must
leave *zero* partial state — ``BackpressureError`` and friends promise
the caller that nothing was half-applied.  For any lock-owning class
in ``service/`` (the same ownership test as REP003: shared concurrent
objects own a ``threading.Lock``/``RLock``; thread- and
process-confined state does not), the rule flags statements that can
raise *unprotected* while shared-state mutations have already applied
on some path behind them **and** more mutations still lie ahead on a
normal path — the exact shape where an escaping exception strands the
object between two self-consistent states.

Path sensitivity comes from the CFG (analysis/cfg.py) plus two
reachability closures over its normal (non-``exc``) edges:

* *behind*: nodes reachable from some mutation's successors — "a
  mutation may already have applied when we get here";
* *ahead*: nodes from which some mutation is still reachable — "more
  mutation was coming".

A statement is an unprotected raiser when it is lexically outside
every ``try`` body in the function (a ``try`` — with handlers *or*
``finally`` — is the project's hook for rollback/commit, so anything
under one is considered handled; handler and ``finally`` bodies are
the rollback mechanism itself and are likewise exempt) and it raises
or calls something not on the safe list.  The fix the rule points at is the staging pattern:
read and compute into locals, commit the attribute writes in one
non-raising tail — or wrap the region in ``try``/``finally`` rollback.

``__init__`` is exempt (the object is not yet shared), and so are
``metrics`` chains (counters are monotonic diagnostics, not state the
zero-trace contract covers).
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple, Union

from repro.analysis.cfg import FALSE, NEXT, TRUE, stmt_exprs
from repro.analysis.dataflow import closure
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import FileContext, Rule, register
from repro.analysis.rules._ast_util import attr_chain

__all__ = ["ExceptionSafetyRule"]

_LOCK_CTORS = frozenset({"Lock", "RLock"})

#: Edge kinds that model normal execution; ``exc`` edges land in
#: handler/rollback code, which must not count as "mutation ahead".
_NORMAL_EDGES = (NEXT, TRUE, FALSE)

#: Methods that mutate the container they are called on.
_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "remove", "discard", "clear", "popleft", "appendleft",
})

#: Calls whose failure modes are out of scope: builtins that raise
#: only on programming errors, container access, lock methods, time
#: sources.  Everything *not* listed is assumed able to raise — I/O,
#: IPC, numpy, and first-party helpers all stay "raising", which is
#: the conservative direction for this rule.
_SAFE_CALL_NAMES = frozenset({
    # builtins
    "len", "int", "float", "str", "bool", "repr", "format", "abs",
    "min", "max", "sum", "sorted", "list", "dict", "set", "tuple",
    "frozenset", "range", "enumerate", "zip", "isinstance",
    "issubclass", "getattr", "hasattr", "setattr", "id", "type",
    "print", "vars", "iter", "next", "round", "divmod", "hash",
    "cast",  # typing.cast is an identity at runtime

    # container / lock / misc methods that do not do I/O
    "get", "pop", "items", "keys", "values", "copy", "index",
    "count", "qsize", "acquire", "release", "locked", "keys",
    "startswith", "endswith", "split", "rsplit", "join", "strip",
    "lower", "upper", "encode", "decode", "replace",
} | _MUTATOR_METHODS)

#: Module prefixes whose calls are treated as non-raising (clocks,
#: logging — neither raises in practice nor touches shared state).
_SAFE_CALL_BASES = frozenset({"time", "logging", "math"})

#: Attribute-chain segments exempt from mutation tracking.
_EXEMPT_SEGMENTS = frozenset({"metrics"})

_CONTAINER_CTORS = frozenset({
    "list", "dict", "set", "deque", "defaultdict", "OrderedDict",
    "Counter",
})

_FnDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _is_lock_ctor(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    chain = attr_chain(node.func)
    if not chain:
        return False
    if len(chain) == 1:
        return chain[0] in _LOCK_CTORS
    return chain[-2] == "threading" and chain[-1] in _LOCK_CTORS


def _is_container_value(node: ast.AST) -> bool:
    """Literal/ctor container values: ``[]``, ``{}``, ``deque()`` …"""
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        chain = attr_chain(node.func)
        return bool(chain) and chain[-1] in _CONTAINER_CTORS
    return False


def _iter_calls(expr: ast.AST) -> Iterator[ast.Call]:
    """Calls evaluated by ``expr`` now — lambda bodies run later."""
    if isinstance(expr, ast.Lambda):
        return
    if isinstance(expr, ast.Call):
        yield expr
    for child in ast.iter_child_nodes(expr):
        yield from _iter_calls(child)


def _self_attr_target(target: ast.AST) -> Optional[Tuple[str, ...]]:
    """Chain when ``target`` writes ``self.<attr>`` or into it."""
    while isinstance(target, (ast.Subscript, ast.Starred)):
        target = target.value
    chain = attr_chain(target)
    if chain and len(chain) >= 2 and chain[0] == "self":
        return tuple(chain)
    return None


@register
class ExceptionSafetyRule(Rule):
    rule_id = "REP008"
    title = "exception-safe-mutation"
    severity = Severity.ERROR
    rationale = (
        "A failed operation must leave zero partial state (the "
        "all-or-nothing 429 contract). A statement that can raise "
        "outside any try, after some shared-state writes and before "
        "others, strands the object between two consistent states. "
        "Stage into locals and commit in a non-raising tail, or wrap "
        "the region in try/finally rollback."
    )
    scope = ("service/",)

    # -- class-level facts --------------------------------------------
    def _lock_attrs(self, cls: ast.ClassDef) -> Set[str]:
        out: Set[str] = set()
        for node in ast.walk(cls):
            if isinstance(node, ast.Assign) and _is_lock_ctor(node.value):
                for target in node.targets:
                    chain = attr_chain(target)
                    if chain and len(chain) == 2 and chain[0] == "self":
                        out.add(chain[1])
        return out

    def _container_attrs(self, cls: ast.ClassDef) -> Set[str]:
        """Attrs the class initializes to container literals/ctors."""
        out: Set[str] = set()
        for node in ast.walk(cls):
            if isinstance(node, ast.Assign) and _is_container_value(node.value):
                for target in node.targets:
                    chain = attr_chain(target)
                    if chain and len(chain) == 2 and chain[0] == "self":
                        out.add(chain[1])
        return out

    # -- per-statement classification ---------------------------------
    def _mutates(self, stmt: ast.AST, containers: Set[str]) -> Optional[str]:
        """The shared attribute this node's execution mutates, if any."""
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                sub = list(target.elts)
            else:
                sub = [target]
            for t in sub:
                chain = _self_attr_target(t)
                if chain and not _EXEMPT_SEGMENTS & set(chain):
                    return chain[1]
        # Mutator-method calls on container attributes: only attrs the
        # class initializes to container literals count, so a call like
        # self.wal.append(...) on an injected collaborator is the
        # collaborator's business, not a mutation of *this* object.
        for expr in stmt_exprs(stmt):
            for call in _iter_calls(expr):
                chain = attr_chain(call.func)
                if (chain and len(chain) == 3 and chain[0] == "self"
                        and chain[2] in _MUTATOR_METHODS
                        and chain[1] in containers
                        and not _EXEMPT_SEGMENTS & set(chain)):
                    return chain[1]
        return None

    def _raises_unprotected(self, stmt: ast.AST,
                            protected: FrozenSet[int]) -> bool:
        if id(stmt) in protected:
            return False
        if isinstance(stmt, (ast.Raise, ast.Assert)):
            return True
        for expr in stmt_exprs(stmt):
            for call in _iter_calls(expr):
                chain = attr_chain(call.func)
                if chain is None:
                    return True  # computed callee — assume it can raise
                if _EXEMPT_SEGMENTS & set(chain):
                    continue
                if chain[0] in _SAFE_CALL_BASES and len(chain) > 1:
                    continue
                if chain[-1] in _SAFE_CALL_NAMES:
                    continue
                return True
        return False

    def _protected_ids(self, fn: _FnDef) -> FrozenSet[int]:
        """ids of statements lexically under some ``try`` body."""
        out: Set[int] = set()

        def visit(stmts: List[ast.stmt], protected: bool) -> None:
            for s in stmts:
                if protected:
                    out.add(id(s))
                if isinstance(s, ast.Try):
                    visit(s.body, True)
                    # Handler/finally bodies ARE the rollback hook the
                    # rule asks for; re-flagging inside them would
                    # punish the fix.
                    for handler in s.handlers:
                        visit(handler.body, True)
                    visit(s.orelse, protected)
                    visit(s.finalbody, True)
                elif isinstance(s, (ast.If,)):
                    visit(s.body, protected)
                    visit(s.orelse, protected)
                elif isinstance(s, (ast.While, ast.For, ast.AsyncFor)):
                    visit(s.body, protected)
                    visit(s.orelse, protected)
                elif isinstance(s, (ast.With, ast.AsyncWith)):
                    visit(s.body, protected)
                # nested defs/classes are separate scopes

        visit(list(fn.body), False)
        return frozenset(out)

    # -- the path-sensitive check -------------------------------------
    def _check_method(self, ctx: FileContext, cls: ast.ClassDef,
                      fn: _FnDef, containers: Set[str]) -> Iterator[Finding]:
        cfg = ctx.cfg(fn)
        mut_nids: List[int] = []
        mut_attr: Dict[int, str] = {}
        for node in cfg.nodes:
            if node.stmt is None or node.kind in ("handlers", "handler",
                                                  "final"):
                continue
            attr = self._mutates(node.stmt, containers)
            if attr is not None:
                mut_nids.append(node.nid)
                mut_attr[node.nid] = attr
        if len(mut_nids) < 2:
            return  # a single write cannot be left half-applied

        def fwd(nid: int) -> List[int]:
            return cfg.successors(nid, _NORMAL_EDGES)

        def bwd(nid: int) -> List[int]:
            return cfg.predecessors(nid, _NORMAL_EDGES)

        # "some mutation may already have applied here"
        behind = closure([s for m in mut_nids for s in fwd(m)], fwd)
        # "some mutation still lies ahead on a normal path"
        ahead = closure([p for m in mut_nids for p in bwd(m)], bwd)

        protected = self._protected_ids(fn)
        reported: Set[int] = set()
        for node in cfg.nodes:
            if node.stmt is None or node.kind in ("handlers", "handler"):
                continue
            if node.nid not in behind or node.nid not in ahead:
                continue
            if not self._raises_unprotected(node.stmt, protected):
                continue
            line = getattr(node.stmt, "lineno", 0)
            if line in reported:
                continue
            reported.add(line)
            done = sorted({mut_attr[m] for m in mut_nids
                           if node.nid in closure(fwd(m), fwd)})
            todo = sorted({mut_attr[m] for m in mut_nids
                           if node.nid in closure(bwd(m), bwd)})
            yield ctx.finding(
                self, node.stmt,
                f"'{cls.name}.{fn.name}' can raise here between shared-"
                f"state writes (applied: "
                f"{', '.join('self.' + a for a in done) or '?'}; still "
                f"ahead: {', '.join('self.' + a for a in todo) or '?'}) "
                f"with no enclosing try — an escaping exception leaves "
                f"the object half-updated. Stage into locals and commit "
                f"after the last raising call, or add try/finally "
                f"rollback",
            )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for cls in ast.walk(ctx.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            if not self._lock_attrs(cls):
                continue  # thread-/process-confined: not shared state
            containers = self._container_attrs(cls)
            for stmt in cls.body:
                if not isinstance(stmt, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                    continue
                if stmt.name == "__init__":
                    continue
                yield from self._check_method(ctx, cls, stmt, containers)
