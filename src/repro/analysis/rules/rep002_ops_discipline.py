"""REP002 — ops discipline: matrix sweeps charge the OpCounter.

Invariant (PAPER.md §4, docs/ALGORITHMS.md): detection code charges
the shared :class:`~repro.util.counters.OpCounter` the *algorithm's
nominal* costs — one ``freq_check`` per element inspection, one
``formula_eval`` per Formula (2) screen — regardless of how the
implementation vectorizes the work.  Proposition 4.1/4.2's measured
growth, Figure 13, and the 0%-drift ops gate in CI all depend on every
sweep being accounted.

The rule flags any function in ``core/`` that *sweeps matrix entries*
— calls ``entries()`` / ``row_entries()`` / ``all_entries()`` or reads
a dense plane view — without an ``ops.add(...)`` charge in the same
function scope.  Helpers whose caller provably charges the nominal
cost carry an inline suppression naming that caller (see
docs/STATIC_ANALYSIS.md); that keeps the exemption visible at the
sweep site instead of implicit in call-graph knowledge.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import FileContext, Rule, register
from repro.analysis.rules._ast_util import (
    attr_chain,
    base_of_chain,
    iter_function_scopes,
    walk_scope,
)

__all__ = ["OpsDisciplineRule"]

#: Backend-agnostic bulk accessors — every call is a matrix sweep.
SWEEP_METHODS: FrozenSet[str] = frozenset({
    "entries", "row_entries", "all_entries",
})

#: Dense plane views — reading one sweeps (or materializes) n x n state.
SWEEP_ATTRS: FrozenSet[str] = frozenset({
    "counts", "positives", "negatives", "effective_counts",
})


def _is_ops_charge(node: ast.AST) -> bool:
    """Is ``node`` an ``<...>ops.add(...)`` call?"""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if not isinstance(func, ast.Attribute) or func.attr != "add":
        return False
    chain = attr_chain(func)
    # self.ops.add / ops.add / detector.ops.add — the charge target is
    # an OpCounter bound under the conventional name "ops".
    return bool(chain) and len(chain) >= 2 and chain[-2] == "ops"


def _sweep_site(node: ast.AST) -> Optional[Tuple[ast.AST, str]]:
    """``(anchor, description)`` when ``node`` sweeps matrix entries."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in SWEEP_METHODS:
            base = base_of_chain(node.func)
            if base != "self":
                return node, f"{node.func.attr}() sweep"
    elif isinstance(node, ast.Attribute) and node.attr in SWEEP_ATTRS:
        if base_of_chain(node) != "self":
            return node, f"dense plane read '.{node.attr}'"
    return None


@register
class OpsDisciplineRule(Rule):
    rule_id = "REP002"
    title = "ops-discipline"
    severity = Severity.WARNING
    rationale = (
        "Formula (2)'s nominal OpCounter charging keeps Prop 4.1/4.2 "
        "cost accounting byte-identical across backends and "
        "vectorization strategies; an uncharged sweep silently breaks "
        "the Figure 13 trajectory and the CI ops gate."
    )
    scope = ("core/",)

    def _scan(self, nodes: Sequence[ast.AST]
              ) -> Tuple[List[Tuple[ast.AST, str]], bool]:
        sweeps: List[Tuple[ast.AST, str]] = []
        charged = False
        for node in walk_scope(nodes):
            site = _sweep_site(node)
            if site is not None:
                sweeps.append(site)
            if _is_ops_charge(node):
                charged = True
        return sweeps, charged

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for _cls, fn in iter_function_scopes(ctx.tree):
            sweeps, charged = self._scan(fn.body)
            if charged or not sweeps:
                continue
            for anchor, what in sorted(
                    sweeps, key=lambda s: (s[0].lineno, s[0].col_offset)):
                yield ctx.finding(
                    self, anchor,
                    f"{what} in '{fn.name}' with no ops.add(...) charge in "
                    f"scope — charge the nominal cost or suppress, naming "
                    f"the caller that charges",
                )
