"""REP002 — ops discipline: matrix sweeps charge the OpCounter.

Invariant (PAPER.md §4, docs/ALGORITHMS.md): detection code charges
the shared :class:`~repro.util.counters.OpCounter` the *algorithm's
nominal* costs — one ``freq_check`` per element inspection, one
``formula_eval`` per Formula (2) screen — regardless of how the
implementation vectorizes the work.  Proposition 4.1/4.2's measured
growth, Figure 13, and the 0%-drift ops gate in CI all depend on every
sweep being accounted.

The check is **interprocedural**: a sweep — a call to ``entries()`` /
``row_entries()`` / ``all_entries()`` or a dense plane-view read — in
``core/`` is compliant when every call path from a public entry point
down to the sweep passes through (or ends at) a function that charges
``ops.add(...)``.  Concretely, walking the reverse call graph from the
sweeping function through *uncharged* functions only must never reach
an uncharged public function or an uncharged root (a function with no
known callers); charged callers terminate their path as covered.  The
helper-extraction idiom — ``detect()`` pre-charges the nominal cost,
``_ScreenPass.__init__`` performs the sweep — therefore needs no
suppression, while deleting the caller's charge flags the sweep again.

Dynamic calls resolve to conservative *candidate* edges (every
first-party function sharing the bare name), which can only add
charged callers — over-approximation never invents a finding here, it
can only suppress one along a path that may not exist; the paired ops
gate in CI (`repro bench compare --metric ops`) backstops that bias
dynamically.
"""

from __future__ import annotations

from typing import Iterator, Optional, Set

from repro.analysis.callgraph import FuncKey, ProgramContext
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, register

__all__ = ["OpsDisciplineRule"]


@register
class OpsDisciplineRule(Rule):
    rule_id = "REP002"
    title = "ops-discipline"
    severity = Severity.WARNING
    rationale = (
        "Formula (2)'s nominal OpCounter charging keeps Prop 4.1/4.2 "
        "cost accounting byte-identical across backends and "
        "vectorization strategies; an uncharged sweep silently breaks "
        "the Figure 13 trajectory and the CI ops gate. The check is "
        "interprocedural: a charge anywhere on every call path from "
        "the enclosing public entry point covers the sweep."
    )
    scope = ("core/",)
    whole_program = True

    def _uncharged_entry(self, program: ProgramContext,
                         start: FuncKey) -> Optional[FuncKey]:
        """An uncharged entry point reaching ``start`` charge-free.

        Reverse-BFS from the sweeping function through uncharged
        functions; a charged caller covers its paths, an uncharged
        public function (or callerless root) is the violation witness.
        """
        seen: Set[FuncKey] = {start}
        queue = [start]
        while queue:
            key = queue.pop()
            fsum = program.functions[key]
            callers = program.callers_of(key)
            if fsum.is_public or not callers:
                return key
            for caller in callers:
                if caller in seen:
                    continue
                seen.add(caller)
                if not program.functions[caller].charges_ops:
                    queue.append(caller)
        return None

    def check_program(self, program: ProgramContext) -> Iterator[Finding]:
        for mod, fsum, key in program.iter_functions():
            if not self.applies_to(mod.module_path):
                continue
            if not fsum.sweeps or fsum.charges_ops:
                continue
            entry = self._uncharged_entry(program, key)
            if entry is None:
                continue
            entry_name = program.functions[entry].qualname
            if entry == key:
                why = (f"'{fsum.qualname}' is a public entry point and "
                       f"never charges")
            else:
                why = (f"reachable from uncharged entry point "
                       f"'{entry_name}' with no charge on the path")
            for site, what in sorted(fsum.sweeps,
                                     key=lambda s: (s[0].line, s[0].col)):
                yield Finding(
                    rule=self.rule_id,
                    severity=self.severity,
                    path=mod.display_path,
                    line=site.line,
                    col=site.col,
                    message=(
                        f"{what} in '{fsum.qualname}' with no "
                        f"ops.add(...) charge on some call path — {why}; "
                        f"charge the nominal cost here or in every caller"
                    ),
                    line_text=site.text,
                )
