"""REP010 — untrusted request data must be validated before it steers
filesystem paths or epoch/shard indices.

Invariant (docs/SERVICE.md): everything arriving over HTTP —
``self.path``, ``self.headers``, the body read off ``self.rfile`` —
is attacker-controlled.  Before such a value reaches a *sink* it must
pass a *validator*: ``int``/``float`` (which raise on junk and are
wrapped in 400-returning try blocks by convention) or the trace
codec's ``decode_jsonl`` (which enforces the schema and node range).

Sinks are where unvalidated input turns into damage:

* filesystem — ``open``, ``os.path.*``, ``os.remove``/``rename``/
  ``makedirs`` …, ``pathlib.Path`` (a request-derived path is a
  traversal primitive);
* index lookups — ``shard_of``/``reputation_of`` and friends, where a
  forged node id indexes shard state (the paper's detector is only as
  trustworthy as the evidence store, PAPERS.md).

Mechanics: per function, a forward may-taint pass
(:class:`~repro.analysis.dataflow.TaintAnalysis`) over the shared CFG
(``ctx.cfg``); at every node, calls the node itself evaluates are
checked sink-by-argument against the node's *entry* taint set.  Taint
survives joins (may-analysis), string ops on tainted values stay
tainted, and sanitizer calls return clean values.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple, Union

from repro.analysis.cfg import stmt_exprs
from repro.analysis.dataflow import TaintAnalysis, TaintSpec
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import FileContext, Rule, register
from repro.analysis.rules._ast_util import attr_chain, iter_function_scopes

__all__ = ["InputTaintRule"]

#: Attribute paths that denote raw request data in an http.server
#: handler (and any calls on them: ``self._read_body()``).
_SOURCE_CHAINS: Tuple[Tuple[str, ...], ...] = (
    ("self", "path"),
    ("self", "headers"),
    ("self", "rfile"),
    ("self", "requestline"),
    ("self", "_read_body"),
)

#: Validators: raise on malformed input (callers wrap them in
#: 400-returning try blocks) or schema-check it.
_SANITIZERS = frozenset({"int", "float", "decode_jsonl"})

#: os functions that take a path (beyond the os.path.* namespace).
_OS_PATH_FUNCS = frozenset({
    "open", "remove", "unlink", "rename", "replace", "makedirs",
    "mkdir", "rmdir", "listdir", "stat", "chmod",
})

#: Method/function names whose argument indexes shard or epoch state.
_INDEX_SINKS = frozenset({"shard_of", "reputation_of"})

_FnDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _sink_kind(call: ast.Call) -> str:
    """'' when the call is not a sink, else a short description."""
    chain = attr_chain(call.func)
    if not chain:
        return ""
    if chain == ["open"]:
        return "filesystem path ('open')"
    if len(chain) >= 2 and chain[0] == "os":
        if chain[1] == "path" or chain[-1] in _OS_PATH_FUNCS:
            return f"filesystem path ('{'.'.join(chain)}')"
    if chain[-1] == "Path" or (len(chain) >= 2 and chain[-2] == "pathlib"):
        return "filesystem path ('pathlib.Path')"
    if chain[-1] in _INDEX_SINKS:
        return f"shard/epoch index ('{chain[-1]}')"
    return ""


@register
class InputTaintRule(Rule):
    rule_id = "REP010"
    title = "input-taint"
    severity = Severity.ERROR
    rationale = (
        "HTTP request fields are attacker-controlled. Reaching a "
        "filesystem path or a shard/epoch index without passing a "
        "validator (int/float/decode_jsonl) hands the attacker a "
        "traversal or state-corruption primitive; validate at the "
        "edge, then pass only the validated value inward."
    )
    scope = ("service/",)

    def __init__(self) -> None:
        self._analysis = TaintAnalysis(TaintSpec(
            source_chains=_SOURCE_CHAINS,
            sanitizers=_SANITIZERS,
        ))

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for _cls, fn in iter_function_scopes(ctx.tree):
            yield from self._check_function(ctx, fn)

    def _check_function(self, ctx: FileContext, fn: _FnDef) -> Iterator[Finding]:
        # Cheap pre-filter: functions that never touch a source cannot
        # produce tainted values, so skip the CFG + fixpoint.
        if not self._mentions_source(fn):
            return
        cfg = ctx.cfg(fn)
        taint_in = self._analysis.run(cfg)
        for node in cfg.nodes:
            if node.stmt is None:
                continue
            tainted = taint_in.get(node.nid, frozenset())
            for expr in stmt_exprs(node.stmt):
                for call in ast.walk(expr):
                    if not isinstance(call, ast.Call):
                        continue
                    kind = _sink_kind(call)
                    if not kind:
                        continue
                    args = list(call.args) + [kw.value for kw in call.keywords]
                    if any(self._analysis.expr_tainted(arg, tainted)
                           for arg in args):
                        yield ctx.finding(
                            self, call,
                            f"unvalidated request data reaches a "
                            f"{kind} sink in '{fn.name}' — pass it "
                            f"through int/float/decode_jsonl (or "
                            f"another validator) first",
                        )

    @staticmethod
    def _mentions_source(fn: _FnDef) -> bool:
        for node in ast.walk(fn):
            chain = attr_chain(node) if isinstance(node, ast.Attribute) else None
            if chain and any(tuple(chain[: len(s)]) == s
                             for s in _SOURCE_CHAINS):
                return True
        return False
