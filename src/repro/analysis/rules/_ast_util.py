"""Small AST helpers shared by the reprolint rules."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Tuple, Union

__all__ = [
    "attr_chain",
    "base_of_chain",
    "iter_function_scopes",
    "module_level_nodes",
    "walk_scope",
]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]
_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef)


def attr_chain(node: ast.AST) -> Optional[List[str]]:
    """The dotted-name parts of ``a.b.c`` (``["a", "b", "c"]``).

    ``None`` when the chain hangs off anything but plain names —
    calls, subscripts, literals — in which case positional identity
    is meaningless for the rules' purposes.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


def base_of_chain(node: ast.Attribute) -> Optional[str]:
    """The leftmost name of an attribute chain, if it is a plain name."""
    chain = attr_chain(node)
    return chain[0] if chain else None


def walk_scope(body: Sequence[ast.AST]) -> Iterator[ast.AST]:
    """Walk ``body`` without descending into nested function/class defs.

    The innermost-enclosing-scope walk the rules reason with: a nested
    function is its own scope, so its nodes must not leak into the
    enclosing function's.
    """
    pending: List[ast.AST] = list(body)
    while pending:
        node = pending.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _DEFS + (ast.ClassDef,)):
                continue
            pending.append(child)


def iter_function_scopes(
    tree: ast.Module,
) -> Iterator[Tuple[Optional[ast.ClassDef], FunctionNode]]:
    """Yield ``(enclosing_class, function)`` for every def in the module.

    ``enclosing_class`` is the nearest enclosing class (``None`` for
    module-level functions); nested functions inherit the class of the
    method they are defined in.
    """
    def visit(nodes: Sequence[ast.stmt],
              cls: Optional[ast.ClassDef]) -> Iterator:
        for stmt in nodes:
            if isinstance(stmt, _DEFS):
                yield cls, stmt
                yield from visit(stmt.body, cls)
            elif isinstance(stmt, ast.ClassDef):
                yield from visit(stmt.body, stmt)
            else:
                children = [c for c in ast.iter_child_nodes(stmt)
                            if isinstance(c, ast.stmt)]
                if children:
                    yield from visit(children, cls)
    yield from visit(tree.body, None)


def module_level_nodes(tree: ast.Module) -> Iterator[ast.AST]:
    """Walk every node executed at import time (no function bodies)."""
    pending: List[ast.AST] = list(tree.body)
    while pending:
        node = pending.pop()
        if isinstance(node, _DEFS):
            # Decorators and defaults run at import time; bodies do not.
            yield from node.decorator_list
            yield from node.args.defaults
            yield from [d for d in node.args.kw_defaults if d is not None]
            continue
        yield node
        pending.extend(ast.iter_child_nodes(node))
