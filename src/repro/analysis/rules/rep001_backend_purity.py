"""REP001 — backend purity: rating storage is reached via the facade.

Invariant (PR 3, docs/ARCHITECTURE.md): every consumer of rating
counts goes through the :class:`~repro.ratings.matrix.RatingMatrix` /
:class:`~repro.ratings.backends.MatrixBackend` *backend-agnostic*
surface — ``row_entries()`` / ``entries()`` / ``received_*()`` /
``pair_*()`` — so the dense and sparse engines stay observationally
identical and the detectors never silently densify an ``(n, n)``
plane.  Two violation classes:

* **error** — touching a backend's private storage
  (``._counts`` / ``._positives`` / ``._negatives`` / ``._rows`` /
  ``._node_total`` / ``._node_pos`` / ``._node_neg``) from outside the
  backend module;
* **warning** — reading the dense-only plane views (``.counts`` /
  ``.positives`` / ``.negatives`` / ``.effective_counts``), which
  raise on the sparse backend.  Pre-existing dense-only algorithms are
  baselined; new code must use the agnostic accessors.

``self.<attr>`` accesses are exempt — an object's own attributes are
its business (``OpCounter._counts`` is not a matrix plane).
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import FileContext, Rule, register
from repro.analysis.rules._ast_util import base_of_chain

__all__ = ["BackendPurityRule"]

#: Private storage attributes of the two shipped backends.
PRIVATE_PLANE_ATTRS: FrozenSet[str] = frozenset({
    "_counts", "_positives", "_negatives",
    "_rows", "_node_total", "_node_pos", "_node_neg",
})

#: Dense-only facade views (raise on the sparse backend).
DENSE_VIEW_ATTRS: FrozenSet[str] = frozenset({
    "counts", "positives", "negatives", "effective_counts",
})


@register
class BackendPurityRule(Rule):
    rule_id = "REP001"
    title = "backend-purity"
    severity = Severity.WARNING
    rationale = (
        "Matrix storage must be reached through the backend-agnostic "
        "RatingMatrix/MatrixBackend facade so dense and sparse engines "
        "stay observationally identical (PR 3 equivalence property)."
    )
    exclude = ("ratings/backends.py", "ratings/matrix.py")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            base = base_of_chain(node)
            if base == "self":
                continue
            if node.attr in PRIVATE_PLANE_ATTRS:
                yield ctx.finding(
                    self, node,
                    f"access to backend-private storage '.{node.attr}' "
                    f"outside ratings/backends.py — go through the "
                    f"MatrixBackend protocol",
                    severity=Severity.ERROR,
                )
            elif node.attr in DENSE_VIEW_ATTRS:
                yield ctx.finding(
                    self, node,
                    f"dense-only plane view '.{node.attr}' (raises on the "
                    f"sparse backend) — use row_entries()/entries()/"
                    f"received_*() for backend-agnostic access",
                )
