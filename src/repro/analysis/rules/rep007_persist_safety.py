"""REP007 — persistence exception-safety: no torn writes on crash.

Invariant (docs/SERVICE.md, PR 1): the service's crash-recovery
guarantee — WAL replay over the latest snapshot reconstructs exact
state — holds only if a crash mid-write can never leave a
half-written artifact where recovery will read it.  Three disciplines
satisfy it, and every persistence write site must use one:

* **append-mode** writes (``open(path, "a")``): the WAL's discipline —
  a torn tail record is detected and dropped by replay;
* **atomic rename**: write a temp file, then ``os.replace()`` /
  ``os.rename()`` it over the destination (the snapshot store's
  discipline) — readers see the old or the new file, never a mix;
* **try/finally** around the write so cleanup runs on the error path.

The rule flags any write-mode ``open(...)`` / ``path.open(...)`` or
``path.write_text(...)`` in scope that is not covered by one of the
three (the atomic-rename check is same-function: a write in a function
that also calls ``os.replace``/``os.rename`` is taken as the temp-file
pattern).  Scope is the persistence surface: ``service/``, the linter's
own baseline writer, and the mmap image publisher in
``ratings/backends.py`` (``write_image`` must keep its tmp +
``os.replace`` discipline so a crash mid-publish can never tear the
image a restarted worker maps).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import FileContext, Rule, register
from repro.analysis.rules._ast_util import attr_chain, iter_function_scopes, walk_scope

__all__ = ["PersistSafetyRule"]

_WRITE_MODES = ("w", "x")


def _literal_mode(call: ast.Call) -> Optional[str]:
    """The file-mode string of an open call, when statically known."""
    for arg in list(call.args[1:2]) + [
        kw.value for kw in call.keywords if kw.arg == "mode"
    ]:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
    return None


def _write_site(node: ast.AST) -> Optional[Tuple[ast.Call, str]]:
    """``(call, description)`` when ``node`` opens a file for writing."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name) and func.id == "open":
        mode = _literal_mode(node)
        if mode is not None and mode[0] in _WRITE_MODES:
            return node, f"open(..., {mode!r})"
        return None
    if isinstance(func, ast.Attribute):
        if func.attr == "open":
            # path.open("w"): first positional argument is the mode.
            mode = None
            if node.args and isinstance(node.args[0], ast.Constant) \
                    and isinstance(node.args[0].value, str):
                mode = node.args[0].value
            for kw in node.keywords:
                if kw.arg == "mode" and isinstance(kw.value, ast.Constant) \
                        and isinstance(kw.value.value, str):
                    mode = kw.value.value
            if mode is not None and mode[0] in _WRITE_MODES:
                return node, f".open({mode!r})"
            return None
        if func.attr == "write_text":
            return node, ".write_text(...)"
    return None


def _is_atomic_rename(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    chain = attr_chain(node.func)
    return bool(chain) and len(chain) >= 2 and chain[-2] == "os" \
        and chain[-1] in ("replace", "rename")


def _protected_sites(body: List[ast.stmt]) -> Iterator[Tuple[ast.Call, str, bool]]:
    """Yield ``(call, description, in_try_finally)`` for write sites.

    Walks one function scope tracking whether each site sits inside a
    ``try`` that has a ``finally`` block.
    """

    def visit(node: ast.AST, protected: bool) -> Iterator[Tuple[ast.Call, str, bool]]:
        site = _write_site(node)
        if site is not None:
            yield site[0], site[1], protected
        if isinstance(node, ast.Try):
            inner = protected or bool(node.finalbody)
            for child in node.body + node.orelse:
                yield from visit(child, inner)
            for handler in node.handlers:
                for child in handler.body:
                    yield from visit(child, inner)
            for child in node.finalbody:
                yield from visit(child, protected)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            return  # nested scopes are their own functions
        for child in ast.iter_child_nodes(node):
            yield from visit(child, protected)

    for stmt in body:
        yield from visit(stmt, False)


@register
class PersistSafetyRule(Rule):
    rule_id = "REP007"
    title = "persist-safety"
    severity = Severity.ERROR
    rationale = (
        "Crash recovery replays the WAL over the latest snapshot; a "
        "torn write where recovery reads would corrupt reconstructed "
        "state. Persistence writes must append, write-then-rename, or "
        "guard cleanup with try/finally so a crash mid-write cannot "
        "leave a half-written artifact behind."
    )
    scope = ("service/", "analysis/baseline.py", "ratings/backends.py")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for _cls, fn in iter_function_scopes(ctx.tree):
            atomic = any(_is_atomic_rename(node)
                         for node in walk_scope(fn.body))
            if atomic:
                continue
            for call, what, in_finally in _protected_sites(list(fn.body)):
                if in_finally:
                    continue
                yield ctx.finding(
                    self, call,
                    f"non-atomic persistence write {what} in '{fn.name}' — "
                    f"append, write a temp file and os.replace() it, or "
                    f"wrap the write in try/finally",
                )
