"""REP009 — resource lifecycle: every acquisition has a release path.

Invariant (docs/SERVICE.md, PR 8): the service's native handles —
mmap state images, worker ``Pipe`` ends, ``SharedMemory`` segments,
spill files — must be released on *every* path, because a leaked fd
in a forkserver-restarted worker or an unlinked-but-mapped segment
survives the process that forgot it.

The per-file summarizer (callgraph.py) already did the hard work on
the CFG: each :class:`~repro.analysis.callgraph.ResourceFact` records
whether the acquisition was ``with``-managed, escaped into longer-
lived state, reached a release on every normal path (``close()`` in
``finally`` counts — the leak search follows explicit-``raise``
edges but not call exception edges), or was handed to callees.

This whole-program pass settles the one question the per-file view
cannot: a hand-off to a *first-party* callee — resolved, or a
candidate matching some first-party function — is an ownership
transfer (``self._conn = conn`` two frames down is that callee's
story, and a false leak here would teach people to baseline the
rule).  A hand-off that resolves to nothing first-party is not a
release: ``pickle.dumps(fh)`` does not close anything.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.callgraph import CallRef, FuncKey, ProgramContext
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, register

__all__ = ["ResourceLifecycleRule"]

_KIND_HINTS = {
    "open": "file handle",
    "mmap": "mmap mapping",
    "pipe": "Pipe connection",
    "queue": "multiprocessing queue",
    "shared_memory": "SharedMemory segment",
    "tempfile": "temporary file",
}


@register
class ResourceLifecycleRule(Rule):
    rule_id = "REP009"
    title = "resource-lifecycle"
    severity = Severity.ERROR
    rationale = (
        "mmap images, Pipe ends, SharedMemory segments and spill "
        "files must be released on every path — a handle leaked on "
        "an early return or explicit raise outlives the worker that "
        "opened it. Use a with-statement, close in finally, or hand "
        "the handle off to an owner that does."
    )
    scope = ()
    whole_program = True

    def check_program(self, program: ProgramContext) -> Iterator[Finding]:
        for mod, fsum, key in program.iter_functions():
            for fact in fsum.resources:
                if fact.managed or fact.escapes or fact.released:
                    continue
                if any(self._is_transfer(program, key, fsum.cls, ref)
                       for ref in fact.handoffs):
                    continue
                hint = _KIND_HINTS.get(fact.kind, fact.kind)
                handle = f"'{fact.var}'" if fact.var else "the handle"
                yield Finding(
                    rule=self.rule_id,
                    severity=self.severity,
                    path=mod.display_path,
                    line=fact.site.line,
                    col=fact.site.col,
                    message=(
                        f"{hint} {handle} acquired in '{fsum.qualname}' "
                        f"is not released on every path (no with, no "
                        f"close on some normal/raise path, no first-"
                        f"party hand-off) — wrap it in a with-statement "
                        f"or close it in finally"
                    ),
                    line_text=fact.site.text,
                )

    @staticmethod
    def _is_transfer(program: ProgramContext, key: FuncKey,
                     caller_cls: str, ref: CallRef) -> bool:
        """Does this hand-off land in first-party code?"""
        target, cand = program.resolve_call(key[0], caller_cls, ref)
        if target is not None:
            return True
        return bool(cand) and bool(program.functions_named(cand))
