"""REP006 — lock ordering: the acquisition graph must be acyclic.

Invariant (docs/SERVICE.md): the service may own several locks (the
coordinator's ingest lock, the counters' internal lock), and any two
locks ever held together must always be acquired in the same order —
a cycle in the lock-order graph is a potential deadlock that no test
will reliably reproduce under scheduling jitter.

Construction, on top of the whole-program call graph:

* per-function *direct* acquisitions come from ``with self.<attr>:``
  blocks where ``<attr>`` is a ``threading.Lock``/``RLock`` attribute
  of the enclosing class; ``*_locked`` methods are treated as entered
  with every lock of their class already held (the project's
  documented caller-holds-the-lock convention);
* each function's *may-acquire* set is the fixpoint of its direct
  acquisitions plus the may-acquire sets of its **resolved** callees —
  candidate (dynamic over-approximation) edges are excluded, because a
  speculative edge into a lock-taking function would fabricate
  deadlock reports (conversely to REP002, over-approximating here is
  unsafe in the *reporting* direction);
* an edge ``A → B`` means "B was acquired (or may be acquired by a
  callee) while A was held", witnessed by both acquisition sites.

Findings: one **error** per cycle in the lock-order graph, with every
acquisition site on the cycle named in the message; re-acquiring a
non-reentrant plain ``Lock`` while holding it (a self-cycle) is the
degenerate case and is reported too — an ``RLock`` self-edge is legal
and ignored.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.callgraph import (
    LockAcquire,
    LockKey,
    ModuleSummary,
    ProgramContext,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.lockset import Witness, direct_acquires, lock_universe, may_acquire
from repro.analysis.registry import Rule, register

__all__ = ["LockOrderRule"]

#: A witnessed acquisition: where, in which file.
_Witness = Witness                   # (display_path, site)

#: One lock-order edge A -> B with both acquisition sites.
_Edge = Tuple[LockKey, LockKey, _Witness, _Witness]


def _lock_name(key: LockKey) -> str:
    return f"{key[1]}.{key[2]}"


def _fmt(witness: _Witness) -> str:
    return f"{witness[0]}:{witness[1].line}"


@register
class LockOrderRule(Rule):
    rule_id = "REP006"
    title = "lock-order"
    severity = Severity.ERROR
    rationale = (
        "Two locks ever held together must be acquired in one global "
        "order; a cycle in the acquisition graph is a deadlock waiting "
        "for the right scheduling. The graph is built from with-lock "
        "blocks and *_locked conventions propagated through resolved "
        "call edges, so the order is checked across function and "
        "module boundaries."
    )
    #: Lock-owning classes live in service/ and util/; the graph is
    #: built program-wide so a cross-layer inversion is still a cycle.
    scope = ()
    whole_program = True

    # ------------------------------------------------------------------
    # The lock universe and may-acquire fixpoint live in
    # repro.analysis.lockset so the guard-inference rules (REP011/012)
    # share the exact summaries this rule propagates.

    def _edges(self, program: ProgramContext) -> List[_Edge]:
        direct = direct_acquires(program)
        may = may_acquire(program, direct)
        edges: List[_Edge] = []

        def lock_of(mod: ModuleSummary, cls: str,
                    acq: LockAcquire) -> Optional[LockKey]:
            csum = mod.classes.get(cls)
            if csum is not None and acq.attr in csum.lock_attrs:
                return (mod.module_path, cls, acq.attr)
            return None

        for mod, fsum, key in program.iter_functions():
            if not fsum.cls:
                continue
            # Lexically nested with-blocks.
            for outer, inner in fsum.held_acquires:
                a = lock_of(mod, fsum.cls, outer)
                b = lock_of(mod, fsum.cls, inner)
                if a is not None and b is not None:
                    edges.append((a, b, (mod.display_path, outer.site),
                                  (mod.display_path, inner.site)))
            # Calls made while holding a lock: everything the callee
            # may transitively acquire is acquired "inside" it.
            for outer, ref in fsum.held_calls:
                a = lock_of(mod, fsum.cls, outer)
                if a is None:
                    continue
                callee = program.resolve_held_call(mod.module_path,
                                                   fsum.cls, ref)
                if callee is None:
                    continue
                for b, witness in may.get(callee, {}).items():
                    edges.append((a, b, (mod.display_path, outer.site),
                                  witness))
            # *_locked methods: every call in the body runs under the
            # class's locks, and so does every direct acquisition.
            if fsum.locked_convention:
                csum = mod.classes.get(fsum.cls)
                if csum is None:
                    continue
                held: List[Tuple[LockKey, _Witness]] = [
                    ((mod.module_path, fsum.cls, attr),
                     (mod.display_path, fsum.site))
                    for attr in sorted(csum.lock_attrs)
                ]
                inner_locks: Dict[LockKey, _Witness] = {}
                for acq in fsum.acquires:
                    b = lock_of(mod, fsum.cls, acq)
                    if b is not None:
                        inner_locks.setdefault(
                            b, (mod.display_path, acq.site))
                for ref in fsum.calls:
                    callee = program.resolve_held_call(
                        mod.module_path, fsum.cls, ref)
                    if callee is None:
                        continue
                    for b, witness in may.get(callee, {}).items():
                        inner_locks.setdefault(b, witness)
                for a, site_a in held:
                    for b, site_b in inner_locks.items():
                        edges.append((a, b, site_a, site_b))
        return edges

    # ------------------------------------------------------------------
    def check_program(self, program: ProgramContext) -> Iterator[Finding]:
        universe = lock_universe(program)
        if not universe:
            return
        edges = self._edges(program)
        adjacency: Dict[LockKey, Dict[LockKey, Tuple[_Witness, _Witness]]] = {}
        self_deadlocks: List[_Edge] = []
        for a, b, site_a, site_b in edges:
            if a == b:
                # Reentrant locks may self-nest; a plain Lock self-edge
                # blocks forever.
                if universe.get(a) == "Lock":
                    self_deadlocks.append((a, b, site_a, site_b))
                continue
            adjacency.setdefault(a, {}).setdefault(b, (site_a, site_b))

        seen_self: Set[Tuple[LockKey, int]] = set()
        for a, _b, site_a, site_b in self_deadlocks:
            marker = (a, site_b[1].line)
            if marker in seen_self:
                continue
            seen_self.add(marker)
            yield self._finding(
                site_b,
                f"re-acquiring non-reentrant lock '{_lock_name(a)}' "
                f"already held since {_fmt(site_a)} — self-deadlock "
                f"(use RLock or restructure)",
            )

        for cycle in _cycles(adjacency):
            steps = []
            for i, lock in enumerate(cycle):
                nxt = cycle[(i + 1) % len(cycle)]
                site_a, site_b = adjacency[lock][nxt]
                steps.append(
                    f"'{_lock_name(lock)}' held at {_fmt(site_a)} while "
                    f"acquiring '{_lock_name(nxt)}' at {_fmt(site_b)}"
                )
            anchor = adjacency[cycle[0]][cycle[1 % len(cycle)]][1]
            names = " -> ".join(_lock_name(lock) for lock in cycle)
            yield self._finding(
                anchor,
                f"lock-order cycle {names} -> {_lock_name(cycle[0])} "
                f"(potential deadlock): " + "; ".join(steps),
            )

    def _finding(self, anchor: _Witness, message: str) -> Finding:
        display_path, site = anchor
        return Finding(
            rule=self.rule_id,
            severity=self.severity,
            path=display_path,
            line=site.line,
            col=site.col,
            message=message,
            line_text=site.text,
        )


def _cycles(
    adjacency: Dict[LockKey, Dict[LockKey, Tuple[_Witness, _Witness]]]
) -> List[List[LockKey]]:
    """One representative cycle per strongly connected component.

    Deterministic: nodes are visited in sorted order and the first
    cycle found inside each multi-node SCC is reported.  One finding
    per SCC keeps a K-lock tangle from exploding into K! reports.
    """
    index: Dict[LockKey, int] = {}
    low: Dict[LockKey, int] = {}
    on_stack: Set[LockKey] = set()
    stack: List[LockKey] = []
    sccs: List[List[LockKey]] = []
    counter = [0]

    def strongconnect(node: LockKey) -> None:
        index[node] = low[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        for nxt in sorted(adjacency.get(node, {})):
            if nxt not in index:
                strongconnect(nxt)
                low[node] = min(low[node], low[nxt])
            elif nxt in on_stack:
                low[node] = min(low[node], index[nxt])
        if low[node] == index[node]:
            component: List[LockKey] = []
            while True:
                member = stack.pop()
                on_stack.discard(member)
                component.append(member)
                if member == node:
                    break
            if len(component) > 1:
                sccs.append(sorted(component))

    for node in sorted(adjacency):
        if node not in index:
            strongconnect(node)

    cycles: List[List[LockKey]] = []
    for component in sccs:
        cycle = _shortest_cycle(adjacency, set(component), component[0])
        if cycle is not None:
            cycles.append(cycle)
    return cycles


def _shortest_cycle(
    adjacency: Dict[LockKey, Dict[LockKey, Tuple[_Witness, _Witness]]],
    members: Set[LockKey],
    start: LockKey,
) -> Optional[List[LockKey]]:
    """BFS for the shortest ``start -> ... -> start`` cycle in the SCC."""
    prev: Dict[LockKey, LockKey] = {}
    queue: List[LockKey] = []
    for nxt in sorted(adjacency.get(start, {})):
        if nxt in members and nxt not in prev:
            prev[nxt] = start
            queue.append(nxt)
    head = 0
    while head < len(queue):
        current = queue[head]
        head += 1
        if start in adjacency.get(current, {}):
            path = [current]
            while path[-1] != start:
                path.append(prev[path[-1]])
            return list(reversed(path))
        for nxt in sorted(adjacency.get(current, {})):
            if nxt in members and nxt not in prev:
                prev[nxt] = current
                queue.append(nxt)
    return None  # pragma: no cover - strong connectivity guarantees a cycle
