"""REP004 — determinism: no ambient randomness or wall-clock reads.

Invariant (docs/EXPERIMENTS.md, ROADMAP): every figure and benchmark
in the repo reproduces bit-for-bit from a seed.  That only holds if
the simulation/detection stack draws randomness exclusively from the
seeded generators handed down by :mod:`repro.util.rng` and never reads
the wall clock into results.  The global ``random`` module, legacy
``numpy.random.*`` module-level functions, ``time.time()``, and
``datetime.now()`` all smuggle ambient state into what must be a pure
function of the seed.

Scope: ``core/``, ``ratings/``, ``experiments/`` — the layers whose
outputs land in figures and BENCH artifacts.  The service layer is
allowed wall-clock reads (WAL timestamps are operational metadata,
not results).
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, Optional

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import FileContext, Rule, register
from repro.analysis.rules._ast_util import attr_chain

__all__ = ["DeterminismRule"]

#: Legacy numpy.random module-level draws (global-state RNG).  The
#: modern ``default_rng`` / ``Generator`` / ``SeedSequence`` API is
#: what repro.util.rng hands out and is allowed.
LEGACY_NP_RANDOM: FrozenSet[str] = frozenset({
    "seed", "rand", "randn", "randint", "random", "random_sample",
    "choice", "shuffle", "permutation", "uniform", "normal",
})

#: Wall-clock reads.
CLOCK_CALLS: FrozenSet[str] = frozenset({
    "time.time", "time.time_ns", "datetime.now", "datetime.utcnow",
    "datetime.today", "date.today",
})


def _clock_key(chain: Optional[list]) -> Optional[str]:
    """Match ``time.time()`` / ``datetime.datetime.now()`` etc."""
    if not chain or len(chain) < 2:
        return None
    tail = ".".join(chain[-2:])
    return tail if tail in CLOCK_CALLS else None


@register
class DeterminismRule(Rule):
    rule_id = "REP004"
    title = "determinism"
    severity = Severity.ERROR
    rationale = (
        "Figures and BENCH artifacts must be pure functions of the "
        "seed; ambient randomness (global random module, legacy "
        "numpy.random) or wall-clock reads make reruns diverge and "
        "break the reproduction claim."
    )
    scope = ("core/", "ratings/", "experiments/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        yield ctx.finding(
                            self, node,
                            "import of the global 'random' module — draw "
                            "from repro.util.rng's seeded Generator instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield ctx.finding(
                        self, node,
                        "import from the global 'random' module — draw "
                        "from repro.util.rng's seeded Generator instead",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)

    def _check_call(self, ctx: FileContext,
                    node: ast.Call) -> Iterator[Finding]:
        chain = attr_chain(node.func)
        if not chain:
            return
        # random.random() / random.shuffle(...) — any global-module draw.
        if len(chain) >= 2 and chain[0] == "random":
            yield ctx.finding(
                self, node,
                f"global-state randomness 'random.{'.'.join(chain[1:])}()'"
                f" — use the seeded Generator from repro.util.rng",
            )
            return
        # np.random.randint(...) — legacy numpy global RNG.
        if (len(chain) >= 3 and chain[-2] == "random"
                and chain[-1] in LEGACY_NP_RANDOM):
            yield ctx.finding(
                self, node,
                f"legacy numpy global RNG "
                f"'{'.'.join(chain)}()' — use "
                f"numpy.random.default_rng via repro.util.rng",
            )
            return
        clock = _clock_key(chain)
        if clock is not None:
            yield ctx.finding(
                self, node,
                f"wall-clock read '{clock}()' in the deterministic stack "
                f"— results must be a pure function of the seed; pass "
                f"timestamps in from the caller if needed",
            )
