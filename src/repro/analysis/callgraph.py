"""Whole-program symbol table and call graph for reprolint.

Per-file :class:`ModuleSummary` objects capture everything the
cross-file rules need — functions with their call references, ops
charges, matrix-sweep sites, lock acquisitions and the calls made while
holding each lock — in a plain-dict-serializable form so the analysis
cache (:mod:`repro.analysis.cache`) can persist them between runs.

:class:`ProgramContext` links the summaries into a call graph:

* ``repro.*`` imports resolve through a project-wide symbol table
  (module → classes/functions, with one-level re-export chasing so
  ``from repro.core import BasicCollusionDetector`` resolves);
* ``self.method()`` resolves through the class and its first-party
  bases; ``self.a.b.method()`` walks the class-attribute *type map*
  inferred from ``self.a = ClassName(...)`` assignments (``X if cond
  else ClassName()`` unwraps to the constructing branch);
* ``ClassName(...)`` resolves to ``ClassName.__init__``;
* bare function references passed as call arguments — the
  ``functools.partial(f, ...)`` / bound-method callback idiom —
  contribute call edges when they resolve to a first-party function;
* anything dynamic (calls on parameters, subscripts, call results)
  becomes a conservative **candidate** edge to every first-party
  function or method sharing the bare name (dunder names excluded, so
  ``super().__init__()`` does not alias every constructor).

Rules choose their edge set: reachability rules (REP002) traverse
resolved + candidate edges — over-approximating callers is safe when
an extra caller can only *suppress* a finding; the lock-order rule
(REP006) propagates lock sets along **resolved edges only**, because a
speculative edge into a lock-taking function would fabricate deadlock
cycles that do not exist.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.cfg import EXC, build_cfg

__all__ = [
    "AttrAccess",
    "CallRef",
    "ClassSummary",
    "FunctionSummary",
    "LockAcquire",
    "ModuleSummary",
    "ProgramContext",
    "ResourceFact",
    "Site",
    "SWEEP_ATTRS",
    "SWEEP_METHODS",
    "is_ops_charge",
    "module_name",
    "summarize_module",
]

#: Backend-agnostic bulk accessors — every call is a matrix sweep.
SWEEP_METHODS = frozenset({"entries", "row_entries", "all_entries"})

#: Dense plane views — reading one sweeps (or materializes) n x n state.
SWEEP_ATTRS = frozenset({"counts", "positives", "negatives", "effective_counts"})

_LOCK_CTORS = frozenset({"Lock", "RLock"})
_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef)


def attr_chain(node: ast.AST) -> Optional[List[str]]:
    """The dotted-name parts of ``a.b.c`` (``["a", "b", "c"]``).

    Duplicated from :mod:`repro.analysis.rules._ast_util` (10 lines)
    rather than imported: the rules package imports this module, so an
    import here would be circular.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


def is_ops_charge(node: ast.AST) -> bool:
    """Is ``node`` an ``<...>ops.add(...)`` call?"""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if not isinstance(func, ast.Attribute) or func.attr != "add":
        return False
    chain = attr_chain(func)
    return bool(chain) and len(chain) >= 2 and chain[-2] == "ops"


def module_name(module_path: str) -> str:
    """Importable module name for a package-relative posix path.

    ``core/basic.py`` → ``repro.core.basic``; ``core/__init__.py`` →
    ``repro.core``.  Virtual fixture paths map the same way, which is
    all the resolver needs — consistency, not importability.
    """
    stem = module_path[:-3] if module_path.endswith(".py") else module_path
    parts = [p for p in stem.split("/") if p]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(["repro"] + parts)


# ---------------------------------------------------------------------------
# Serializable summary records


@dataclass
class Site:
    """One source location inside a module (line 1-based, col 0-based)."""

    line: int
    col: int
    text: str

    def to_dict(self) -> Dict[str, object]:
        return {"line": self.line, "col": self.col, "text": self.text}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Site":
        return cls(int(data["line"]), int(data["col"]), str(data["text"]))


@dataclass
class CallRef:
    """One call (or callable reference) made by a function.

    ``kind`` describes how the callee was spelled:

    * ``name`` — bare name ``f(...)``;
    * ``self`` — ``self.<chain>(...)``, chain excludes ``self``;
    * ``var`` — ``x.<chain>(...)`` where ``x`` was locally assigned a
      first-party constructor result (``var_class`` holds the class
      reference as spelled at the assignment);
    * ``dotted`` — any other plain dotted chain (imports, params);
    * ``unknown`` — callee hangs off a subscript/call result; only the
      trailing attribute name is known.

    ``is_ref`` marks a bare callable *reference* in argument position
    (``partial(f)``, ``shard.call(self._drain)``): it contributes an
    edge only when it resolves — never a candidate edge, so data
    arguments cannot pollute the graph.
    """

    kind: str
    chain: Tuple[str, ...]
    var_class: str = ""
    is_ref: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "chain": list(self.chain),
            "var_class": self.var_class,
            "is_ref": self.is_ref,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CallRef":
        return cls(
            str(data["kind"]),
            tuple(str(c) for c in data["chain"]),
            str(data.get("var_class", "")),
            bool(data.get("is_ref", False)),
        )


@dataclass
class LockAcquire:
    """A ``with self.<attr>:`` acquisition site inside one function."""

    attr: str
    site: Site

    def to_dict(self) -> Dict[str, object]:
        return {"attr": self.attr, "site": self.site.to_dict()}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LockAcquire":
        return cls(str(data["attr"]), Site.from_dict(data["site"]))


@dataclass
class AttrAccess:
    """One ``self.<attr>`` read or write inside a method.

    The unit of evidence for the lockset layer
    (:mod:`repro.analysis.lockset`): ``held`` names the lock attributes
    of the enclosing class lexically held at the access (via ``with
    self.<lock>:`` regions), ``in_handler`` marks except/finally bodies
    (the rollback convention the guard rules exempt), and ``method`` is
    set when the access is the receiver of a ``self.<attr>.<m>(...)``
    call — how the cross-process rule recognizes queue/Pipe mediation.
    ``kind`` is ``write`` for assignments (including subscript stores
    and attribute stores through the object) and in-place mutator
    calls, ``read`` otherwise.
    """

    attr: str
    kind: str                           # "read" | "write"
    site: Site
    held: Tuple[str, ...] = ()
    in_handler: bool = False
    method: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "attr": self.attr,
            "kind": self.kind,
            "site": self.site.to_dict(),
            "held": list(self.held),
            "in_handler": self.in_handler,
            "method": self.method,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AttrAccess":
        return cls(
            attr=str(data["attr"]),
            kind=str(data["kind"]),
            site=Site.from_dict(data["site"]),
            held=tuple(str(h) for h in data["held"]),
            in_handler=bool(data["in_handler"]),
            method=str(data["method"]),
        )


@dataclass
class ResourceFact:
    """One resource acquisition (REP009's unit of evidence).

    Computed per function over the CFG at summary time so the result
    is cacheable; the whole-program pass only has to decide whether
    recorded hand-offs resolve to first-party callees (transfer) or
    not (leak).

    ``released`` means every normal path — plus the paths explicit
    ``raise`` statements open — from the acquisition to a function
    exit passes a release of the handle first: a ``.close()`` /
    ``.release()`` / … call, a ``with`` over it, a store (``self.x =
    h``, ``container.append(h)``), a return/yield of it, an aliasing
    assignment, or ``del``.  Exception edges of *calls* are not leak
    paths: demanding try/finally around every call would flag the
    whole tree, and the crash story is REP008's domain.
    """

    var: str                    # local handle name ("" when unnamed)
    kind: str                   # open|mmap|pipe|queue|shared_memory|tempfile
    site: Site
    managed: bool = False       # acquired by a with-statement
    escapes: bool = False       # bound straight to an attribute/subscript
    released: bool = True
    handoffs: List[CallRef] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "var": self.var,
            "kind": self.kind,
            "site": self.site.to_dict(),
            "managed": self.managed,
            "escapes": self.escapes,
            "released": self.released,
            "handoffs": [c.to_dict() for c in self.handoffs],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ResourceFact":
        return cls(
            var=str(data["var"]),
            kind=str(data["kind"]),
            site=Site.from_dict(data["site"]),
            managed=bool(data["managed"]),
            escapes=bool(data["escapes"]),
            released=bool(data["released"]),
            handoffs=[CallRef.from_dict(c) for c in data["handoffs"]],
        )


@dataclass
class FunctionSummary:
    """Everything the program rules need about one function/method."""

    qualname: str                       # "Class.method" or "func"
    cls: str                            # "" for module-level functions
    name: str
    site: Site                          # the def statement
    is_public: bool
    charges_ops: bool
    locked_convention: bool             # method named *_locked
    sweeps: List[Tuple[Site, str]] = field(default_factory=list)
    calls: List[CallRef] = field(default_factory=list)
    acquires: List[LockAcquire] = field(default_factory=list)
    #: (outer acquisition, inner acquisition) for lexically nested locks.
    held_acquires: List[Tuple[LockAcquire, LockAcquire]] = field(default_factory=list)
    #: (acquisition, call made while holding it).
    held_calls: List[Tuple[LockAcquire, CallRef]] = field(default_factory=list)
    #: Resource acquisitions with their CFG-derived lifecycle verdicts.
    resources: List[ResourceFact] = field(default_factory=list)
    #: Every ``self.<attr>`` access with its lexical lock context.
    accesses: List[AttrAccess] = field(default_factory=list)
    #: ``(call ref, exact lexically-held lock attrs)`` per call site —
    #: recorded only for methods of lock-owning classes (elsewhere the
    #: held set is always empty and ``calls`` carries the same refs).
    call_locksets: List[Tuple[CallRef, Tuple[str, ...]]] = field(default_factory=list)
    #: ``(kind, callable ref)`` for ``target=`` arguments handed to
    #: ``Thread``/``Process`` constructors; kind is thread|process.
    spawn_targets: List[Tuple[str, CallRef]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "qualname": self.qualname,
            "cls": self.cls,
            "name": self.name,
            "site": self.site.to_dict(),
            "is_public": self.is_public,
            "charges_ops": self.charges_ops,
            "locked_convention": self.locked_convention,
            "sweeps": [[s.to_dict(), desc] for s, desc in self.sweeps],
            "calls": [c.to_dict() for c in self.calls],
            "acquires": [a.to_dict() for a in self.acquires],
            "held_acquires": [[a.to_dict(), b.to_dict()] for a, b in self.held_acquires],
            "held_calls": [[a.to_dict(), c.to_dict()] for a, c in self.held_calls],
            "resources": [r.to_dict() for r in self.resources],
            "accesses": [a.to_dict() for a in self.accesses],
            "call_locksets": [
                [c.to_dict(), list(held)] for c, held in self.call_locksets
            ],
            "spawn_targets": [
                [kind, c.to_dict()] for kind, c in self.spawn_targets
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FunctionSummary":
        return cls(
            qualname=str(data["qualname"]),
            cls=str(data["cls"]),
            name=str(data["name"]),
            site=Site.from_dict(data["site"]),
            is_public=bool(data["is_public"]),
            charges_ops=bool(data["charges_ops"]),
            locked_convention=bool(data["locked_convention"]),
            sweeps=[(Site.from_dict(s), str(d)) for s, d in data["sweeps"]],
            calls=[CallRef.from_dict(c) for c in data["calls"]],
            acquires=[LockAcquire.from_dict(a) for a in data["acquires"]],
            held_acquires=[
                (LockAcquire.from_dict(a), LockAcquire.from_dict(b))
                for a, b in data["held_acquires"]
            ],
            held_calls=[
                (LockAcquire.from_dict(a), CallRef.from_dict(c))
                for a, c in data["held_calls"]
            ],
            resources=[ResourceFact.from_dict(r)
                       for r in data.get("resources", [])],
            accesses=[AttrAccess.from_dict(a)
                      for a in data.get("accesses", [])],
            call_locksets=[
                (CallRef.from_dict(c), tuple(str(h) for h in held))
                for c, held in data.get("call_locksets", [])
            ],
            spawn_targets=[
                (str(kind), CallRef.from_dict(c))
                for kind, c in data.get("spawn_targets", [])
            ],
        )


@dataclass
class ClassSummary:
    """One class: methods, bases, inferred attribute types, owned locks."""

    name: str
    bases: List[str] = field(default_factory=list)       # chain strings
    methods: List[str] = field(default_factory=list)
    attr_types: Dict[str, str] = field(default_factory=dict)
    lock_attrs: Dict[str, str] = field(default_factory=dict)  # attr -> Lock|RLock

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "bases": list(self.bases),
            "methods": list(self.methods),
            "attr_types": dict(self.attr_types),
            "lock_attrs": dict(self.lock_attrs),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ClassSummary":
        return cls(
            name=str(data["name"]),
            bases=[str(b) for b in data["bases"]],
            methods=[str(m) for m in data["methods"]],
            attr_types={str(k): str(v) for k, v in data["attr_types"].items()},
            lock_attrs={str(k): str(v) for k, v in data["lock_attrs"].items()},
        )


@dataclass
class ModuleSummary:
    """The whole-program-relevant facts of one source file."""

    module_path: str
    display_path: str
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    classes: Dict[str, ClassSummary] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "module_path": self.module_path,
            "display_path": self.display_path,
            "imports": dict(self.imports),
            "functions": {q: f.to_dict() for q, f in self.functions.items()},
            "classes": {n: c.to_dict() for n, c in self.classes.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ModuleSummary":
        return cls(
            module_path=str(data["module_path"]),
            display_path=str(data["display_path"]),
            imports={str(k): str(v) for k, v in data["imports"].items()},
            functions={
                str(q): FunctionSummary.from_dict(f)
                for q, f in data["functions"].items()
            },
            classes={
                str(n): ClassSummary.from_dict(c)
                for n, c in data["classes"].items()
            },
        )


# ---------------------------------------------------------------------------
# Summarization (one AST pass per file; result is cacheable)


def _line_text(lines: Sequence[str], lineno: int) -> str:
    if 1 <= lineno <= len(lines):
        return lines[lineno - 1].strip()
    return ""


def _ctor_chain(value: ast.AST) -> Optional[List[str]]:
    """The class chain when ``value`` constructs something, else None.

    Unwraps the ``x if cond else ClassName()`` default-argument idiom by
    preferring whichever branch is a constructor call.
    """
    if isinstance(value, ast.IfExp):
        return _ctor_chain(value.body) or _ctor_chain(value.orelse)
    if isinstance(value, ast.Call):
        chain = attr_chain(value.func)
        # Constructor spellings start with an uppercase class name
        # somewhere; a lowercase call (factory function) still resolves
        # later if it is a class, so keep any plain chain.
        return chain
    return None


def _iter_top_scopes(
    tree: ast.Module,
) -> Iterator[Tuple[str, ast.AST]]:
    """Yield ``(class_name, function_def)`` for each *top-level* scope.

    Unlike :func:`iter_function_scopes` this does not yield nested
    functions separately: the summarizer flattens a nested def into its
    enclosing function, which is the conservative reading for call
    edges (defining a callback is treated as potentially calling it).
    """

    def visit(body: Sequence[ast.stmt], cls: str) -> Iterator[Tuple[str, ast.AST]]:
        for stmt in body:
            if isinstance(stmt, _DEFS):
                yield cls, stmt
            elif isinstance(stmt, ast.ClassDef):
                yield from visit(stmt.body, stmt.name)
            elif isinstance(stmt, (ast.If, ast.Try, ast.With, ast.AsyncWith,
                                   ast.For, ast.While)):
                for name in ("body", "orelse", "finalbody"):
                    yield from visit(getattr(stmt, name, []) or [], cls)
                for handler in getattr(stmt, "handlers", []):
                    yield from visit(handler.body, cls)

    yield from visit(tree.body, "")


def _collect_imports(tree: ast.Module, mod_name: str,
                     is_package: bool) -> Dict[str, str]:
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    imports[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                parts = mod_name.split(".")
                pkg = parts if is_package else parts[:-1]
                anchor = pkg[: max(len(pkg) - (node.level - 1), 0)]
                base = ".".join(anchor + ([node.module] if node.module else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                target = f"{base}.{alias.name}" if base else alias.name
                imports[alias.asname or alias.name] = target
    return imports


def _collect_classes(tree: ast.Module, lines: Sequence[str]) -> Dict[str, ClassSummary]:
    classes: Dict[str, ClassSummary] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        summary = ClassSummary(name=node.name)
        for base in node.bases:
            chain = attr_chain(base)
            if chain:
                summary.bases.append(".".join(chain))
        for stmt in node.body:
            if isinstance(stmt, _DEFS):
                summary.methods.append(stmt.name)
        # self.<attr> = <ctor> anywhere in the class body types the
        # attribute; lock constructors feed the REP006 lock universe.
        for sub in ast.walk(node):
            targets: List[ast.AST] = []
            value: Optional[ast.AST] = None
            if isinstance(sub, ast.Assign):
                targets, value = list(sub.targets), sub.value
            elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                targets, value = [sub.target], sub.value
            if value is None:
                continue
            for target in targets:
                chain = attr_chain(target)
                if not (chain and len(chain) == 2 and chain[0] == "self"):
                    continue
                attr = chain[1]
                ctor = _ctor_chain(value)
                if not ctor:
                    continue
                if ctor[-1] in _LOCK_CTORS and (
                        len(ctor) == 1 or ctor[-2] == "threading"):
                    summary.lock_attrs.setdefault(attr, ctor[-1])
                else:
                    summary.attr_types.setdefault(attr, ".".join(ctor))
        classes[node.name] = summary
    return classes


def _classify_call(func: ast.AST, var_types: Dict[str, str]) -> Optional[CallRef]:
    chain = attr_chain(func)
    if chain:
        if len(chain) == 1:
            return CallRef("name", tuple(chain))
        if chain[0] == "self":
            return CallRef("self", tuple(chain[1:]))
        if chain[0] in var_types:
            return CallRef("var", tuple(chain), var_class=var_types[chain[0]])
        return CallRef("dotted", tuple(chain))
    if isinstance(func, ast.Attribute):
        # Callee hangs off a subscript / call result — only the method
        # name survives for the candidate over-approximation.
        return CallRef("unknown", (func.attr,))
    return None


def _classify_ref(arg: ast.AST) -> Optional[CallRef]:
    """A bare callable reference in argument position, if plausible."""
    chain = attr_chain(arg)
    if not chain:
        return None
    if chain[0] == "self" and len(chain) >= 2:
        return CallRef("self", tuple(chain[1:]), is_ref=True)
    if len(chain) >= 2:
        return CallRef("dotted", tuple(chain), is_ref=True)
    return CallRef("name", tuple(chain), is_ref=True)


class _LockWalker:
    """Recursive walk of one function tracking held ``with self.<lock>``.

    Descends into nested defs and lambdas: a callback defined while a
    lock is held is conservatively treated as running under it (the
    coordinator's shard thunks are exactly this shape).
    """

    def __init__(self, fn_summary: FunctionSummary, lock_attrs: Set[str],
                 var_types: Dict[str, str], lines: Sequence[str]):
        self.fn = fn_summary
        self.lock_attrs = lock_attrs
        self.var_types = var_types
        self.lines = lines

    def walk(self, node: ast.AST, held: List[LockAcquire]) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: List[LockAcquire] = []
            for item in node.items:
                self.walk(item.context_expr, held)
                chain = attr_chain(item.context_expr)
                if (chain and len(chain) == 2 and chain[0] == "self"
                        and chain[1] in self.lock_attrs):
                    acq = LockAcquire(
                        attr=chain[1],
                        site=Site(node.lineno, node.col_offset,
                                  _line_text(self.lines, node.lineno)),
                    )
                    self.fn.acquires.append(acq)
                    for outer in held:
                        self.fn.held_acquires.append((outer, acq))
                    acquired.append(acq)
            inner = held + acquired
            for child in node.body:
                self.walk(child, inner)
            return
        if isinstance(node, ast.Call) and held:
            ref = _classify_call(node.func, self.var_types)
            if ref is not None:
                for outer in held:
                    self.fn.held_calls.append((outer, ref))
        for child in ast.iter_child_nodes(node):
            self.walk(child, held)


#: In-place mutators — ``self.<attr>.<m>(...)`` writes the structure.
_MUTATOR_METHODS = frozenset({
    "append", "appendleft", "add", "clear", "discard", "extend", "insert",
    "pop", "popitem", "popleft", "remove", "setdefault", "update",
})

#: Constructors whose ``target=`` keyword names concurrently-run code.
_SPAWN_CTORS = {"Thread": "thread", "Process": "process"}


class _AccessWalker:
    """Recursive walk of one function recording ``self.<attr>`` accesses.

    Tracks the lexically held ``with self.<lock>:`` set and whether the
    access sits inside an except/finally body.  Runs for *every*
    function — classes without locks still contribute the access sites
    the cross-process rule needs — and, for methods of lock-owning
    classes, additionally records every call site with its exact held
    set (``call_locksets``) for the interprocedural entry-lockset
    propagation.  Nested defs and lambdas inherit the held set, the
    same conservative reading :class:`_LockWalker` uses for callbacks.
    """

    def __init__(self, fn_summary: FunctionSummary, lock_attrs: Set[str],
                 var_types: Dict[str, str], lines: Sequence[str]):
        self.fn = fn_summary
        self.lock_attrs = lock_attrs
        self.var_types = var_types
        self.lines = lines
        self.record_calls = bool(lock_attrs)

    def walk(self, node: ast.AST, held: Tuple[str, ...],
             in_handler: bool) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: List[str] = []
            for item in node.items:
                self._scan(item.context_expr, held, in_handler)
                if item.optional_vars is not None:
                    self._scan(item.optional_vars, held, in_handler)
                chain = attr_chain(item.context_expr)
                if (chain and len(chain) == 2 and chain[0] == "self"
                        and chain[1] in self.lock_attrs
                        and chain[1] not in held):
                    acquired.append(chain[1])
            inner = held + tuple(acquired)
            for child in node.body:
                self.walk(child, inner, in_handler)
            return
        if isinstance(node, ast.Try):
            for child in node.body:
                self.walk(child, held, in_handler)
            for child in node.orelse:
                self.walk(child, held, in_handler)
            for handler in node.handlers:
                for child in handler.body:
                    self.walk(child, held, True)
            for child in node.finalbody:
                self.walk(child, held, True)
            return
        if isinstance(node, (ast.If, ast.While)):
            self._scan(node.test, held, in_handler)
            for child in node.body + node.orelse:
                self.walk(child, held, in_handler)
            return
        if isinstance(node, (ast.For, ast.AsyncFor)):
            self._scan(node.target, held, in_handler)
            self._scan(node.iter, held, in_handler)
            for child in node.body + node.orelse:
                self.walk(child, held, in_handler)
            return
        if isinstance(node, _DEFS):
            for child in node.body:
                self.walk(child, held, in_handler)
            return
        if isinstance(node, ast.ClassDef):
            return
        self._scan(node, held, in_handler)

    # ------------------------------------------------------------------
    def _scan(self, root: ast.AST, held: Tuple[str, ...],
              in_handler: bool) -> None:
        """Record every access/call in one statement-or-expression tree."""
        write_ids: Set[int] = set()
        if isinstance(root, ast.Assign):
            for target in root.targets:
                self._collect_write_bases(target, write_ids)
        elif isinstance(root, (ast.AugAssign, ast.AnnAssign)):
            self._collect_write_bases(root.target, write_ids)
        elif isinstance(root, ast.Delete):
            for target in root.targets:
                self._collect_write_bases(target, write_ids)
        consumed: Set[int] = set()
        for node in ast.walk(root):
            if isinstance(node, ast.Call):
                self._scan_call(node, held, consumed)
            elif (isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and id(node) not in consumed):
                consumed.add(id(node))
                write = (id(node) in write_ids
                         or isinstance(node.ctx, (ast.Store, ast.Del)))
                self._record(node.attr, "write" if write else "read",
                             node, held, in_handler)

    def _scan_call(self, node: ast.Call, held: Tuple[str, ...],
                   consumed: Set[int]) -> None:
        chain = attr_chain(node.func)
        if (chain and len(chain) == 3 and chain[0] == "self"
                and isinstance(node.func, ast.Attribute)):
            receiver = node.func.value      # the `self.<attr>` node
            if id(receiver) not in consumed:
                consumed.add(id(receiver))
                kind = ("write" if node.func.attr in _MUTATOR_METHODS
                        else "read")
                self._record(chain[1], kind, node, held, False,
                             method=node.func.attr)
        if self.record_calls:
            ref = _classify_call(node.func, self.var_types)
            if ref is not None:
                self.fn.call_locksets.append((ref, held))
            for arg in _call_args(node):
                arg_ref = _classify_ref(arg)
                if arg_ref is not None:
                    self.fn.call_locksets.append((arg_ref, held))
        if chain and chain[-1] in _SPAWN_CTORS:
            for kw in node.keywords:
                if kw.arg == "target":
                    target_ref = _classify_ref(kw.value)
                    if target_ref is not None:
                        self.fn.spawn_targets.append(
                            (_SPAWN_CTORS[chain[-1]], target_ref))

    def _record(self, attr: str, kind: str, node: ast.AST,
                held: Tuple[str, ...], in_handler: bool,
                method: str = "") -> None:
        lineno = getattr(node, "lineno", 1)
        self.fn.accesses.append(AttrAccess(
            attr=attr,
            kind=kind,
            site=Site(lineno, getattr(node, "col_offset", 0),
                      _line_text(self.lines, lineno)),
            held=held,
            in_handler=in_handler,
            method=method,
        ))

    @staticmethod
    def _collect_write_bases(target: ast.AST, out: Set[int]) -> None:
        """Mark the innermost ``self.<attr>`` a store target mutates.

        ``self.a = v`` marks ``self.a``; ``self.a[k] = v`` and
        ``self.a.b = v`` also mark ``self.a`` — the assignment mutates
        the structure the attribute points at, which is what the guard
        rules care about.
        """
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                _AccessWalker._collect_write_bases(elt, out)
            return
        node = target
        while True:
            if isinstance(node, (ast.Subscript, ast.Starred)):
                node = node.value
            elif isinstance(node, ast.Attribute):
                if isinstance(node.value, ast.Name) and node.value.id == "self":
                    out.add(id(node))
                    return
                node = node.value
            else:
                return


# ---------------------------------------------------------------------------
# Resource lifecycle facts (REP009's per-function evidence)

_ACQUIRE_CTX_BASES = frozenset({"multiprocessing", "mp", "ctx", "context"})
_MP_HANDLES = frozenset({"Pipe", "Queue", "SimpleQueue", "JoinableQueue"})
_TEMP_CTORS = frozenset({
    "NamedTemporaryFile", "TemporaryFile", "SpooledTemporaryFile",
    "TemporaryDirectory",
})
_RELEASE_METHODS = frozenset({
    "close", "release", "terminate", "unlink", "cleanup", "shutdown",
    "join_thread",
})
_STORE_METHODS = frozenset({
    "append", "add", "insert", "setdefault", "update", "extend", "register",
})


def acquire_kind(call: ast.AST) -> Optional[str]:
    """The resource class a call acquires, or None.

    Recognizes ``open``/``*.open``, ``mmap.mmap``, the multiprocessing
    handles (``Pipe``/``Queue``/… off a context), ``SharedMemory`` and
    the tempfile constructors.  ``queue.Queue`` (thread queues hold no
    file descriptors) is deliberately not a resource.
    """
    if not isinstance(call, ast.Call):
        return None
    chain = attr_chain(call.func)
    if not chain:
        return None
    last = chain[-1]
    if last == "open":
        return "open"
    if last == "mmap" and len(chain) >= 2 and chain[-2] == "mmap":
        return "mmap"
    if last in _MP_HANDLES:
        if chain[0] in _ACQUIRE_CTX_BASES or (
                len(chain) >= 2 and chain[-2] in _ACQUIRE_CTX_BASES):
            return "pipe" if last == "Pipe" else "queue"
        return None
    if last == "SharedMemory":
        return "shared_memory"
    if last in _TEMP_CTORS:
        return "tempfile"
    return None


def _holds_name(expr: Optional[ast.AST], var: str) -> bool:
    """Is ``var`` spelled *directly* in ``expr`` (not behind a call)?

    ``return f`` and ``return f, name`` transfer the handle out;
    ``return f.read()`` does not."""
    if expr is None:
        return False
    if isinstance(expr, ast.Name):
        return expr.id == var
    if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
        return any(_holds_name(elt, var) for elt in expr.elts)
    if isinstance(expr, ast.Starred):
        return _holds_name(expr.value, var)
    return False


def _call_args(call: ast.Call) -> List[ast.expr]:
    return list(call.args) + [kw.value for kw in call.keywords]


def _stmt_resource_effect(
    stmt: ast.AST, var: str, var_types: Dict[str, str],
) -> Tuple[bool, List[CallRef]]:
    """``(ends_lifetime, handoffs)`` of one statement for ``var``.

    A statement ends the tracked lifetime when it releases the handle,
    stores it somewhere that outlives the function, returns/yields it,
    aliases it, or ``del``s it.  Hand-offs — calls taking the handle as
    an argument — are returned separately: whether they transfer
    ownership depends on whether the callee is first-party, which only
    the whole-program pass knows.
    """
    handoffs: List[CallRef] = []
    if isinstance(stmt, ast.Return) and _holds_name(stmt.value, var):
        return True, handoffs
    if isinstance(stmt, ast.Delete):
        if any(isinstance(t, ast.Name) and t.id == var for t in stmt.targets):
            return True, handoffs
    if isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, (ast.Yield, ast.YieldFrom)):
        if _holds_name(stmt.value.value, var):
            return True, handoffs
    if isinstance(stmt, ast.Assign) and _holds_name(stmt.value, var):
        return True, handoffs  # alias or store; either transfers the duty
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        if any(_holds_name(item.context_expr, var) for item in stmt.items):
            return True, handoffs  # `with handle:` releases on exit
    # CFG nodes are statement-granular: a compound statement's node is
    # its *header*, the body statements have nodes of their own — so
    # only the header expressions are scanned here.
    if isinstance(stmt, (ast.If, ast.While)):
        scan: List[ast.AST] = [stmt.test]
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        scan = [stmt.iter]
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        scan = [item.context_expr for item in stmt.items]
    elif isinstance(stmt, (ast.Try, ast.ExceptHandler, *_DEFS, ast.ClassDef)):
        scan = []
    else:
        scan = [stmt]
    for root in scan:
        for node in ast.walk(root):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if chain and chain[0] == var and chain[-1] in _RELEASE_METHODS:
                return True, handoffs
            args_hold = any(_holds_name(arg, var) for arg in _call_args(node))
            if not args_hold:
                continue
            if chain and chain[0] == "os" and chain[-1] == "close":
                return True, handoffs
            if chain and chain[-1] in _STORE_METHODS:
                return True, handoffs  # stored in a container
            ref = _classify_call(node.func, var_types)
            if ref is not None:
                handoffs.append(ref)
    return False, handoffs


def _collect_resources(fn: ast.AST, lines: Sequence[str],
                       var_types: Dict[str, str]) -> List[ResourceFact]:
    """Resource facts of one function (CFG path check per tracked var)."""
    assert isinstance(fn, _DEFS)
    facts: List[ResourceFact] = []
    tracked: List[Tuple[ResourceFact, ast.stmt]] = []

    def scope(stmts: Sequence[ast.stmt]) -> Iterator[ast.stmt]:
        for stmt in stmts:
            if isinstance(stmt, (*_DEFS, ast.ClassDef)):
                continue
            yield stmt
            for name in ("body", "orelse", "finalbody"):
                yield from scope(getattr(stmt, name, []) or [])
            for handler in getattr(stmt, "handlers", []):
                yield from scope(handler.body)

    def site_of(call: ast.AST) -> Site:
        lineno = getattr(call, "lineno", 1)
        return Site(lineno, getattr(call, "col_offset", 0),
                    _line_text(lines, lineno))

    for stmt in scope(fn.body):
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                kind = acquire_kind(item.context_expr)
                if kind is not None:
                    facts.append(ResourceFact(
                        var="", kind=kind, site=site_of(item.context_expr),
                        managed=True))
            continue
        if not isinstance(stmt, ast.Assign):
            continue
        kind = acquire_kind(stmt.value)
        if kind is None or len(stmt.targets) != 1:
            continue
        target = stmt.targets[0]
        elements = (list(target.elts) if isinstance(target, ast.Tuple)
                    else [target])
        for element in elements:
            if isinstance(element, ast.Name):
                fact = ResourceFact(var=element.id, kind=kind,
                                    site=site_of(stmt.value))
                facts.append(fact)
                tracked.append((fact, stmt))
            elif isinstance(element, (ast.Attribute, ast.Subscript)):
                facts.append(ResourceFact(
                    var="", kind=kind, site=site_of(stmt.value),
                    escapes=True))

    if not tracked:
        return facts

    cfg = build_cfg(fn)

    def leak_path_exists(start_nid: int, blockers: Set[int]) -> bool:
        # Normal edges plus explicit-raise exception edges; a call's
        # exc edge is not a leak path (see ResourceFact docstring).
        seen: Set[int] = set()
        work = [start_nid]
        while work:
            nid = work.pop()
            if nid in seen:
                continue
            seen.add(nid)
            if nid in (cfg.exit_nid, cfg.raise_nid):
                return True
            if nid != start_nid and nid in blockers:
                continue
            node = cfg.node(nid)
            is_raise = isinstance(node.stmt, ast.Raise)
            for dst, edge_kind in node.succ:
                if edge_kind != EXC or is_raise or node.kind in (
                        "handlers", "handler", "final"):
                    work.append(dst)
        return False

    for fact, acq_stmt in tracked:
        start = cfg.node_of(acq_stmt)
        if start is None:  # pragma: no cover - every stmt gets a node
            continue
        blockers: Set[int] = set()
        handoffs: List[CallRef] = []
        for node in cfg.nodes:
            if node.stmt is None or node.nid == start:
                continue
            ends, calls = _stmt_resource_effect(node.stmt, fact.var,
                                                var_types)
            if ends:
                blockers.add(node.nid)
            handoffs.extend(calls)
        fact.released = not leak_path_exists(start, blockers)
        fact.handoffs = handoffs
    return facts


def summarize_module(module_path: str, display_path: str, source: str,
                     tree: Optional[ast.Module] = None) -> ModuleSummary:
    """Build the serializable whole-program summary of one file."""
    if tree is None:
        tree = ast.parse(source)
    lines = source.splitlines()
    mod_name = module_name(module_path)
    is_package = module_path.endswith("__init__.py")
    summary = ModuleSummary(
        module_path=module_path,
        display_path=display_path,
        imports=_collect_imports(tree, mod_name, is_package),
        classes=_collect_classes(tree, lines),
    )

    for cls_name, fn in _iter_top_scopes(tree):
        assert isinstance(fn, _DEFS)
        qualname = f"{cls_name}.{fn.name}" if cls_name else fn.name
        fsum = FunctionSummary(
            qualname=qualname,
            cls=cls_name,
            name=fn.name,
            site=Site(fn.lineno, fn.col_offset, _line_text(lines, fn.lineno)),
            is_public=not fn.name.startswith("_"),
            charges_ops=False,
            locked_convention=bool(cls_name) and fn.name.endswith("_locked"),
        )

        # Pass 1: local variable types from `x = ClassName(...)`.
        var_types: Dict[str, str] = {}
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    ctor = _ctor_chain(node.value)
                    if ctor:
                        var_types.setdefault(target.id, ".".join(ctor))

        # Pass 1b: resource acquisitions with CFG lifecycle verdicts.
        fsum.resources = _collect_resources(fn, lines, var_types)

        # Pass 2: calls, references, charges, sweep sites.
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                if is_ops_charge(node):
                    fsum.charges_ops = True
                ref = _classify_call(node.func, var_types)
                if ref is not None:
                    fsum.calls.append(ref)
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    arg_ref = _classify_ref(arg)
                    if arg_ref is not None:
                        fsum.calls.append(arg_ref)
                if (isinstance(node.func, ast.Attribute)
                        and node.func.attr in SWEEP_METHODS):
                    chain = attr_chain(node.func)
                    if not chain or chain[0] != "self":
                        fsum.sweeps.append((
                            Site(node.lineno, node.col_offset,
                                 _line_text(lines, node.lineno)),
                            f"{node.func.attr}() sweep",
                        ))
            elif isinstance(node, ast.Attribute) and node.attr in SWEEP_ATTRS:
                chain = attr_chain(node)
                if chain and chain[0] != "self":
                    fsum.sweeps.append((
                        Site(node.lineno, node.col_offset,
                             _line_text(lines, node.lineno)),
                        f"dense plane read '.{node.attr}'",
                    ))

        # Pass 3: lock structure.
        lock_attrs: Set[str] = set()
        if cls_name and cls_name in summary.classes:
            lock_attrs = set(summary.classes[cls_name].lock_attrs)
        if lock_attrs:
            walker = _LockWalker(fsum, lock_attrs, var_types, lines)
            for stmt in fn.body:
                walker.walk(stmt, [])

        # Pass 4: attribute accesses, per-call locksets, spawn targets
        # (the lockset layer's evidence; runs for every function).
        access_walker = _AccessWalker(fsum, lock_attrs, var_types, lines)
        for stmt in fn.body:
            access_walker.walk(stmt, (), False)

        summary.functions[qualname] = fsum
    return summary


# ---------------------------------------------------------------------------
# Linking: the program-wide call graph


FuncKey = Tuple[str, str]           # (module_path, qualname)
LockKey = Tuple[str, str, str]      # (module_path, class, attr)


@dataclass
class _Resolved:
    """Outcome of resolving one dotted reference."""

    kind: str                       # "func" | "class" | "module"
    module_path: str = ""
    name: str = ""                  # qualname / class name


class ProgramContext:
    """Linked view over every module summary of one lint run."""

    def __init__(self, summaries: Dict[str, ModuleSummary]):
        self.modules = summaries
        self._mod_by_name: Dict[str, str] = {
            module_name(mp): mp for mp in summaries
        }
        # Bare-name index for the candidate over-approximation.
        self._by_bare_name: Dict[str, List[FuncKey]] = {}
        self.functions: Dict[FuncKey, FunctionSummary] = {}
        for mp, summary in summaries.items():
            for qualname, fsum in summary.functions.items():
                key = (mp, qualname)
                self.functions[key] = fsum
                self._by_bare_name.setdefault(fsum.name, []).append(key)
        self.resolved: Dict[FuncKey, Set[FuncKey]] = {}
        self.candidates: Dict[FuncKey, Set[FuncKey]] = {}
        self.callers: Dict[FuncKey, Set[FuncKey]] = {}
        self._link()

    # -- symbol resolution ------------------------------------------------

    def _resolve_dotted(self, dotted: str, depth: int = 0) -> Optional[_Resolved]:
        """Resolve a fully-qualified ``repro...`` reference."""
        if depth > 4:
            return None
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            mod = ".".join(parts[:cut])
            mp = self._mod_by_name.get(mod)
            if mp is not None:
                return self._resolve_in_module(mp, parts[cut:], depth)
        return None

    def _resolve_in_module(self, mp: str, rest: List[str],
                           depth: int) -> Optional[_Resolved]:
        summary = self.modules[mp]
        if not rest:
            return _Resolved("module", mp)
        head = rest[0]
        if head in summary.classes:
            if len(rest) == 1:
                return _Resolved("class", mp, head)
            if len(rest) == 2:
                return self._resolve_method(mp, head, rest[1])
            return None
        if len(rest) == 1 and head in summary.functions:
            return _Resolved("func", mp, head)
        if head in summary.imports:
            # Re-export: `from repro.core.basic import X` in __init__.
            target = ".".join([summary.imports[head]] + rest[1:])
            return self._resolve_dotted(target, depth + 1)
        return None

    def _resolve_class_ref(self, ref: str, from_mp: str,
                           depth: int = 0) -> Optional[_Resolved]:
        """Resolve a class reference as spelled inside ``from_mp``."""
        if depth > 4:
            return None
        summary = self.modules.get(from_mp)
        if summary is None:
            return None
        parts = ref.split(".")
        head = parts[0]
        if head in summary.classes and len(parts) == 1:
            return _Resolved("class", from_mp, head)
        if head in summary.imports:
            resolved = self._resolve_dotted(
                ".".join([summary.imports[head]] + parts[1:]), depth + 1)
            if resolved is not None and resolved.kind == "class":
                return resolved
            return None
        if head == "repro":
            resolved = self._resolve_dotted(ref, depth + 1)
            if resolved is not None and resolved.kind == "class":
                return resolved
        return None

    def _resolve_method(self, mp: str, cls: str, meth: str,
                        depth: int = 0) -> Optional[_Resolved]:
        """Look ``meth`` up on ``cls`` and its first-party bases."""
        if depth > 6:
            return None
        summary = self.modules.get(mp)
        if summary is None or cls not in summary.classes:
            return None
        csum = summary.classes[cls]
        qualname = f"{cls}.{meth}"
        if qualname in summary.functions:
            return _Resolved("func", mp, qualname)
        for base in csum.bases:
            resolved_base = self._resolve_class_ref(base, mp)
            if resolved_base is not None:
                found = self._resolve_method(
                    resolved_base.module_path, resolved_base.name, meth,
                    depth + 1)
                if found is not None:
                    return found
        return None

    def _class_of(self, resolved: _Resolved) -> Optional[ClassSummary]:
        summary = self.modules.get(resolved.module_path)
        if summary is None:
            return None
        return summary.classes.get(resolved.name)

    def _walk_attr_types(self, start: _Resolved,
                         attrs: Sequence[str]) -> Optional[_Resolved]:
        """Follow ``.a.b`` through class-attribute type maps."""
        current = start
        for attr in attrs:
            csum = self._class_of(current)
            if csum is None or attr not in csum.attr_types:
                return None
            nxt = self._resolve_class_ref(
                csum.attr_types[attr], current.module_path)
            # The attr type is spelled in the module that assigns it,
            # which is where the class is defined.
            if nxt is None:
                return None
            current = nxt
        return current

    def _func_key(self, resolved: Optional[_Resolved]) -> Optional[FuncKey]:
        if resolved is None:
            return None
        if resolved.kind == "func":
            return (resolved.module_path, resolved.name)
        if resolved.kind == "class":
            init = self._resolve_method(resolved.module_path, resolved.name,
                                        "__init__")
            if init is not None:
                return (init.module_path, init.name)
        return None

    def resolve_call(self, caller_mp: str, caller_cls: str,
                     ref: CallRef) -> Tuple[Optional[FuncKey], Optional[str]]:
        """``(resolved_key, candidate_name)`` for one call reference.

        Exactly one of the pair is non-None for graph-relevant calls;
        both are None for calls known to be third-party/builtin.
        """
        summary = self.modules[caller_mp]
        if ref.kind == "name":
            name = ref.chain[0]
            if name in summary.functions:
                return (caller_mp, name), None
            if name in summary.classes:
                return self._func_key(_Resolved("class", caller_mp, name)), None
            if name in summary.imports:
                target = summary.imports[name]
                if not target.startswith("repro"):
                    return None, None
                return self._func_key(self._resolve_dotted(target)), None
            return None, None   # builtin / stdlib
        if ref.kind == "self":
            if not caller_cls:
                return None, None
            if len(ref.chain) == 1:
                found = self._resolve_method(caller_mp, caller_cls, ref.chain[0])
                if found is not None:
                    return (found.module_path, found.name), None
                return None, self._candidate_name(ref)
            target_cls = self._walk_attr_types(
                _Resolved("class", caller_mp, caller_cls), ref.chain[:-1])
            if target_cls is not None:
                found = self._resolve_method(
                    target_cls.module_path, target_cls.name, ref.chain[-1])
                if found is not None:
                    return (found.module_path, found.name), None
            return None, self._candidate_name(ref)
        if ref.kind == "var":
            base = self._resolve_class_ref(ref.var_class, caller_mp)
            if base is not None:
                target_cls = self._walk_attr_types(base, ref.chain[1:-1])
                if target_cls is not None:
                    found = self._resolve_method(
                        target_cls.module_path, target_cls.name, ref.chain[-1])
                    if found is not None:
                        return (found.module_path, found.name), None
            return None, self._candidate_name(ref)
        if ref.kind == "dotted":
            head = ref.chain[0]
            if head in summary.imports:
                target = summary.imports[head]
                if not target.startswith("repro"):
                    return None, None
                dotted = ".".join([target] + list(ref.chain[1:]))
                key = self._func_key(self._resolve_dotted(dotted))
                if key is not None:
                    return key, None
                return None, self._candidate_name(ref)
            if head == "repro":
                key = self._func_key(self._resolve_dotted(".".join(ref.chain)))
                return key, None if key else self._candidate_name(ref)
            # Parameter / unknown receiver.
            return None, self._candidate_name(ref)
        if ref.kind == "unknown":
            return None, self._candidate_name(ref)
        return None, None

    @staticmethod
    def _candidate_name(ref: CallRef) -> Optional[str]:
        name = ref.chain[-1]
        # Dunder candidates (`super().__init__()` …) would alias every
        # constructor in the program; references never get candidates.
        if ref.is_ref or name.startswith("__"):
            return None
        return name

    # -- linking ----------------------------------------------------------

    def _link(self) -> None:
        for key, fsum in self.functions.items():
            mp, qualname = key
            resolved: Set[FuncKey] = set()
            candidates: Set[FuncKey] = set()
            for ref in fsum.calls:
                target, cand = self.resolve_call(mp, fsum.cls, ref)
                if target is not None and target != key:
                    resolved.add(target)
                elif cand is not None:
                    for ckey in self._by_bare_name.get(cand, []):
                        if ckey != key:
                            candidates.add(ckey)
            candidates -= resolved
            self.resolved[key] = resolved
            self.candidates[key] = candidates
        for src, targets in self.resolved.items():
            for dst in targets:
                self.callers.setdefault(dst, set()).add(src)
        for src, targets in self.candidates.items():
            for dst in targets:
                self.callers.setdefault(dst, set()).add(src)

    # -- queries ----------------------------------------------------------

    def iter_functions(self) -> Iterator[Tuple[ModuleSummary, FunctionSummary, FuncKey]]:
        for mp in sorted(self.modules):
            summary = self.modules[mp]
            for qualname in sorted(summary.functions):
                yield summary, summary.functions[qualname], (mp, qualname)

    def callers_of(self, key: FuncKey) -> Set[FuncKey]:
        """Resolved + candidate callers (the over-approximating set)."""
        return self.callers.get(key, set())

    def resolved_callees(self, key: FuncKey) -> Set[FuncKey]:
        return self.resolved.get(key, set())

    def functions_named(self, name: str) -> List[FuncKey]:
        """First-party functions/methods with this bare name (the
        candidate-edge universe a dynamic call could land in)."""
        return list(self._by_bare_name.get(name, []))

    def resolve_held_call(self, caller_mp: str, caller_cls: str,
                          ref: CallRef) -> Optional[FuncKey]:
        """Resolved-only lookup for lock propagation (no candidates)."""
        target, _cand = self.resolve_call(caller_mp, caller_cls, ref)
        return target
