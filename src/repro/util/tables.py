"""Plain-text table and series formatting for the benchmark harness.

The experiment benches regenerate each paper figure as printed rows /
series (there is no plotting dependency).  These helpers render aligned
monospace tables that diff cleanly between runs.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence, Union

__all__ = ["format_table", "format_series"]

Cell = Union[str, int, float, None]


def _render_cell(value: Cell, float_fmt: str) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    *,
    title: Optional[str] = None,
    float_fmt: str = ".4g",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Iterable of row sequences; each row must have ``len(headers)``
        cells.  ``None`` cells render as ``-``; floats use ``float_fmt``.
    title:
        Optional title line printed above the table.
    float_fmt:
        ``format()`` spec applied to float cells.
    """
    header_cells = [str(h) for h in headers]
    body: List[List[str]] = []
    for row in rows:
        cells = [_render_cell(c, float_fmt) for c in row]
        if len(cells) != len(header_cells):
            raise ValueError(
                f"row has {len(cells)} cells but table has {len(header_cells)} columns"
            )
        body.append(cells)

    widths = [len(h) for h in header_cells]
    for cells in body:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(fmt_row(header_cells))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(cells) for cells in body)
    return "\n".join(lines)


def format_series(
    name: str,
    series: Mapping[Union[int, float, str], Union[int, float]],
    *,
    float_fmt: str = ".4g",
) -> str:
    """Render a single ``x -> y`` series as ``name: x=y, x=y, ...``.

    Used for figure benches whose paper form is a curve (e.g. Figure 12's
    request share vs. number of colluders).
    """
    parts = []
    for x, y in series.items():
        xs = _render_cell(x, float_fmt)
        ys = _render_cell(y, float_fmt)
        parts.append(f"{xs}={ys}")
    return f"{name}: " + ", ".join(parts)
