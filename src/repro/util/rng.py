"""Deterministic random-number stream management.

Every stochastic component in the library (trace generators, the P2P
simulator, behavior models) draws from a ``numpy.random.Generator``.  To
make experiments reproducible bit-for-bit while keeping components
statistically independent, a single root seed is split into *named child
streams* using NumPy's ``SeedSequence.spawn`` machinery.

Example
-------
>>> streams = RngStreams(seed=42)
>>> topo_rng = streams.child("topology")
>>> behavior_rng = streams.child("behavior")

Requesting the same name twice returns a generator seeded identically,
so components can be re-created mid-experiment without perturbing other
streams.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

import numpy as np

__all__ = ["RngStreams", "as_generator", "spawn_children"]

SeedLike = Union[None, int, np.random.SeedSequence, np.random.Generator]


def as_generator(seed: SeedLike) -> np.random.Generator:
    """Coerce ``seed`` into a ``numpy.random.Generator``.

    Accepts ``None`` (fresh OS entropy), an integer seed, a
    ``SeedSequence`` or an existing ``Generator`` (returned unchanged so
    callers can thread one stream through several components on
    purpose).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_children(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Split ``seed`` into ``count`` statistically independent generators."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Use the generator itself to derive child seeds deterministically.
        child_seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in child_seeds]
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


class RngStreams:
    """A registry of named, independent random streams under one seed.

    Parameters
    ----------
    seed:
        Root seed.  ``None`` draws fresh OS entropy (experiments that
        must be reproducible should always pass an int).

    Notes
    -----
    Child streams are derived from ``(root_seed, name)`` via a stable
    hash of the name, so the set of names requested — and the order they
    are requested in — does not affect any individual stream.
    """

    def __init__(self, seed: Optional[int] = None):
        if seed is not None and not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int or None, got {type(seed).__name__}")
        self._root = np.random.SeedSequence(seed)
        self.seed = seed
        self._cache: Dict[str, np.random.Generator] = {}

    def child(self, name: str) -> np.random.Generator:
        """Return the generator for stream ``name`` (cached per instance)."""
        if not isinstance(name, str) or not name:
            raise ValueError("stream name must be a non-empty string")
        if name not in self._cache:
            # Stable name -> integer key; SeedSequence mixes it with the root
            # entropy so distinct names give independent streams.
            key = np.frombuffer(name.encode("utf-8").ljust(8, b"\0")[:8], dtype=np.uint64)
            seq = np.random.SeedSequence(
                entropy=self._root.entropy,
                spawn_key=(int(key[0]) & 0x7FFFFFFF, len(name)),
            )
            self._cache[name] = np.random.default_rng(seq)
        return self._cache[name]

    def children(self, names: Iterable[str]) -> List[np.random.Generator]:
        """Return generators for several stream names at once."""
        return [self.child(n) for n in names]

    def fresh(self) -> "RngStreams":
        """Return a new :class:`RngStreams` with the same root seed.

        All child streams restart from their initial state — useful for
        repeating an experiment run exactly.
        """
        return RngStreams(self.seed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStreams(seed={self.seed!r}, streams={sorted(self._cache)})"
