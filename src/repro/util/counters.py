"""Deterministic cost accounting for the paper's Figure 13.

The paper measures "operation cost … the number of computer cycles for
thwarting collusion".  Wall-clock cycles are noisy and
machine-dependent, so the reproduction counts the algorithms' unit
operations instead:

* :class:`OpCounter` — named counters incremented at each algorithmic
  unit step (matrix-element check, multiply-accumulate of the power
  iteration, formula evaluation …).
* :class:`MessageCounter` — counts DHT / inter-manager messages for the
  decentralized protocol, including per-message hop counts.

Both are plain Python objects; the hot numpy paths account for
vectorized work in bulk (e.g. ``counter.add("mac", n * n)`` after one
mat-vec) so counting adds no per-element overhead.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

__all__ = ["OpCounter", "MessageCounter", "MessageRecord"]


class OpCounter:
    """Named operation counters with snapshot/diff support.

    Thread safety
    -------------
    Every mutating and reading method takes an internal lock, so an
    ``OpCounter`` may be shared between threads — the service's shard
    workers increment while the ``/metrics`` endpoint reads.  The
    contract is:

    * :meth:`add` and :meth:`merge` are atomic — concurrent increments
      never lose updates;
    * :meth:`snapshot` (and :meth:`diff` against a prior snapshot)
      returns a consistent point-in-time copy;
    * compound read-modify sequences built *outside* this class (e.g.
      "snapshot, compute, reset") are **not** atomic — callers needing
      that must serialize themselves.

    The lock is uncontended in single-threaded use and adds ~100 ns per
    ``add``; hot numpy paths already account vectorized work in bulk
    (one ``add`` per mat-vec, not per element), so counting remains
    cheap.

    Example
    -------
    >>> ops = OpCounter()
    >>> ops.add("element_check")
    >>> ops.add("mac", 200 * 200)
    >>> ops.total()
    40001
    """

    __slots__ = ("_counts", "_lock")

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}
        self._lock = threading.Lock()

    def add(self, name: str, count: int = 1) -> None:
        """Increment counter ``name`` by ``count`` (must be >= 0)."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + int(count)

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        with self._lock:
            return self._counts.get(name, 0)

    def total(self) -> int:
        """Sum over all named counters."""
        with self._lock:
            return sum(self._counts.values())

    def reset(self) -> None:
        """Zero every counter."""
        with self._lock:
            self._counts.clear()

    def snapshot(self) -> Dict[str, int]:
        """An immutable copy of the current counts."""
        with self._lock:
            return dict(self._counts)

    def diff(self, earlier: Dict[str, int]) -> Dict[str, int]:
        """Counts accumulated since ``earlier`` (a prior :meth:`snapshot`)."""
        out: Dict[str, int] = {}
        with self._lock:
            for name, value in self._counts.items():
                delta = value - earlier.get(name, 0)
                if delta:
                    out[name] = delta
        return out

    def merge(self, other: "OpCounter") -> None:
        """Fold another counter's totals into this one."""
        for name, value in other.snapshot().items():
            self.add(name, value)

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        return iter(sorted(self.snapshot().items()))

    def __len__(self) -> int:
        with self._lock:
            return len(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._counts.items()))
        return f"OpCounter({inner})"


@dataclass(frozen=True)
class MessageRecord:
    """One inter-manager / DHT message, for protocol-cost analysis."""

    kind: str
    source: int
    destination: int
    hops: int = 1


class MessageCounter:
    """Counts protocol messages and routing hops.

    Used by the Chord ring (every routing step is a hop) and by the
    decentralized detection protocol (every ``Insert(j, msg)`` between
    reputation managers is a message).

    Parameters
    ----------
    keep_records:
        When true, full :class:`MessageRecord` objects are retained so
        tests can inspect sources/destinations; otherwise only
        aggregate totals are kept (the default, cheap mode).
    """

    __slots__ = ("keep_records", "_records", "_messages", "_hops", "_by_kind")

    def __init__(self, keep_records: bool = False) -> None:
        self.keep_records = keep_records
        self._records: List[MessageRecord] = []
        self._messages = 0
        self._hops = 0
        self._by_kind: Dict[str, int] = {}

    def record(self, kind: str, source: int, destination: int, hops: int = 1) -> None:
        """Account one message of ``kind`` routed over ``hops`` hops."""
        if hops < 0:
            raise ValueError(f"hops must be non-negative, got {hops}")
        self._messages += 1
        self._hops += hops
        self._by_kind[kind] = self._by_kind.get(kind, 0) + 1
        if self.keep_records:
            self._records.append(MessageRecord(kind, source, destination, hops))

    @property
    def messages(self) -> int:
        """Total number of messages recorded."""
        return self._messages

    @property
    def hops(self) -> int:
        """Total routing hops across all messages."""
        return self._hops

    def by_kind(self) -> Dict[str, int]:
        """Message counts grouped by ``kind``."""
        return dict(self._by_kind)

    def records(self) -> List[MessageRecord]:
        """The retained message records (empty unless ``keep_records``)."""
        return list(self._records)

    def reset(self) -> None:
        """Drop all recorded messages and totals."""
        self._records.clear()
        self._messages = 0
        self._hops = 0
        self._by_kind.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MessageCounter(messages={self.messages}, hops={self.hops})"
