"""Small argument-validation helpers used across configuration objects.

These raise :class:`repro.errors.ConfigurationError` (a ``ValueError``
subclass) with messages that name the offending parameter, so a bad
experiment spec fails loudly at construction time rather than deep
inside a simulation cycle.
"""

from __future__ import annotations

from numbers import Real
from typing import Union

from repro.errors import ConfigurationError

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_fraction",
    "check_int_range",
]

Number = Union[int, float]


def _check_real(name: str, value: Number) -> None:
    if isinstance(value, bool) or not isinstance(value, Real):
        raise ConfigurationError(f"{name} must be a number, got {type(value).__name__}")


def check_positive(name: str, value: Number) -> Number:
    """Require ``value > 0``; return it for chaining."""
    _check_real(name, value)
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")
    return value


def check_non_negative(name: str, value: Number) -> Number:
    """Require ``value >= 0``; return it for chaining."""
    _check_real(name, value)
    if value < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value}")
    return value


def check_probability(name: str, value: Number) -> float:
    """Require ``0 <= value <= 1``; return it as a float."""
    _check_real(name, value)
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be a probability in [0, 1], got {value}")
    return float(value)


def check_fraction(name: str, value: Number, *, inclusive_low: bool = True,
                   inclusive_high: bool = True) -> float:
    """Require ``value`` in the unit interval with configurable openness."""
    _check_real(name, value)
    low_ok = value >= 0.0 if inclusive_low else value > 0.0
    high_ok = value <= 1.0 if inclusive_high else value < 1.0
    if not (low_ok and high_ok):
        lo = "[" if inclusive_low else "("
        hi = "]" if inclusive_high else ")"
        raise ConfigurationError(f"{name} must lie in {lo}0, 1{hi}, got {value}")
    return float(value)


def check_int_range(name: str, value: int, low: int, high: Union[int, None] = None) -> int:
    """Require an int with ``low <= value`` (and ``value <= high`` if given)."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(f"{name} must be an int, got {type(value).__name__}")
    if value < low or (high is not None and value > high):
        bound = f">= {low}" if high is None else f"in [{low}, {high}]"
        raise ConfigurationError(f"{name} must be {bound}, got {value}")
    return value
