"""Shared utilities: RNG streams, operation counters, tables and stats."""

from repro.util.counters import MessageCounter, OpCounter
from repro.util.rng import RngStreams, as_generator, spawn_children
from repro.util.stats import SeriesSummary, summarize
from repro.util.tables import format_series, format_table
from repro.util.validation import (
    check_fraction,
    check_positive,
    check_probability,
    check_non_negative,
)

__all__ = [
    "MessageCounter",
    "OpCounter",
    "RngStreams",
    "as_generator",
    "spawn_children",
    "SeriesSummary",
    "summarize",
    "format_series",
    "format_table",
    "check_fraction",
    "check_positive",
    "check_probability",
    "check_non_negative",
]
