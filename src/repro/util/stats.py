"""Summary statistics helpers for experiment result series.

The paper's evaluation averages every experiment over 5 independent
runs.  :func:`summarize` collapses a set of per-run vectors into a
:class:`SeriesSummary` carrying mean / std / min / max per position, and
:func:`fit_power_law` estimates the scaling exponent used to verify
Propositions 4.1 (O(mn^2)) and 4.2 (O(mn)) empirically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = ["SeriesSummary", "summarize", "fit_power_law"]


@dataclass(frozen=True)
class SeriesSummary:
    """Per-position summary of several aligned runs of one metric."""

    mean: np.ndarray
    std: np.ndarray
    min: np.ndarray
    max: np.ndarray
    runs: int

    def __len__(self) -> int:
        return len(self.mean)

    def as_rows(self) -> list:
        """Rows ``[index, mean, std, min, max]`` for table rendering."""
        return [
            [i, float(self.mean[i]), float(self.std[i]), float(self.min[i]), float(self.max[i])]
            for i in range(len(self.mean))
        ]


def summarize(runs: Sequence[Sequence[float]]) -> SeriesSummary:
    """Summarize ``runs`` (each an equal-length vector) position-wise.

    Raises
    ------
    ValueError
        If ``runs`` is empty or the vectors have mismatched lengths.
    """
    if not runs:
        raise ValueError("summarize requires at least one run")
    arr = np.asarray(runs, dtype=float)
    if arr.ndim == 1:
        arr = arr[np.newaxis, :]
    if arr.ndim != 2:
        raise ValueError(f"runs must be a 2-D run x position array, got shape {arr.shape}")
    return SeriesSummary(
        mean=arr.mean(axis=0),
        std=arr.std(axis=0),
        min=arr.min(axis=0),
        max=arr.max(axis=0),
        runs=arr.shape[0],
    )


def fit_power_law(sizes: Sequence[float], costs: Sequence[float]) -> Tuple[float, float]:
    """Least-squares fit of ``cost ~ c * size**k`` in log-log space.

    Returns ``(k, c)``.  Used to check that the basic detector's
    measured cost grows ~quadratically in ``n`` while the optimized
    detector's grows ~linearly.

    Raises
    ------
    ValueError
        If fewer than two points are given or any value is non-positive
        (log-log fit is undefined there).
    """
    x = np.asarray(sizes, dtype=float)
    y = np.asarray(costs, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("sizes and costs must be 1-D arrays of equal length")
    if len(x) < 2:
        raise ValueError("power-law fit needs at least two points")
    if np.any(x <= 0) or np.any(y <= 0):
        raise ValueError("power-law fit requires strictly positive sizes and costs")
    k, log_c = np.polyfit(np.log(x), np.log(y), 1)
    return float(k), float(np.exp(log_c))
