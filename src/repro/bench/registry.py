"""Discovery of the benchmark suite under ``benchmarks/``.

The registry imports every ``benchmarks/bench_*.py`` script (imports
must be side-effect-free — enforced by the test suite) and wraps each
in a :class:`BenchSpec` carrying:

* ``name`` — the filename minus the ``bench_`` prefix, e.g.
  ``prop42_optimized_scaling``; this is also the ``BENCH_<name>.json``
  stem;
* ``run`` — the module's ``run(config) -> dict`` entrypoint;
* ``tiers`` — the module's ``TIERS`` tuple (default ``("full",)``);
  the ``smoke`` tier is the fast CI subset;
* ``smoke_config`` — the module's ``SMOKE_CONFIG`` (shrunk workload
  parameters the smoke tier passes to ``run``);
* ``description`` — first line of the module docstring.

The benchmarks directory is not a package; scripts are loaded by file
path under synthetic module names so discovery works from any working
directory (and never shadows installed modules).
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import BenchError

__all__ = ["BenchSpec", "find_bench_dir", "discover", "SMOKE_TIER", "FULL_TIER"]

SMOKE_TIER = "smoke"
FULL_TIER = "full"

_MODULE_NAMESPACE = "repro_bench_scripts"


@dataclass(frozen=True)
class BenchSpec:
    """One registered benchmark script."""

    name: str
    path: pathlib.Path
    run: Callable[[Optional[Dict[str, Any]]], Dict[str, Any]]
    tiers: Tuple[str, ...] = (FULL_TIER,)
    description: str = ""
    smoke_config: Dict[str, Any] = field(default_factory=dict)

    def config_for_tier(self, tier: str) -> Optional[Dict[str, Any]]:
        """The config the given tier runs this bench with."""
        if tier == SMOKE_TIER and self.smoke_config:
            return dict(self.smoke_config)
        return None


def find_bench_dir(explicit: Optional[pathlib.Path] = None) -> pathlib.Path:
    """Locate the ``benchmarks/`` directory.

    Resolution order: explicit argument, the ``REPRO_BENCH_DIR``
    environment variable, ``benchmarks/`` under the current working
    directory, then the checkout layout relative to this source file
    (``src/repro/bench/`` → repo root).
    """
    import os

    if explicit is not None:
        # An explicit location is a claim, not a hint: never fall back.
        directory = pathlib.Path(explicit)
        if directory.is_dir() and list(directory.glob("bench_*.py")):
            return directory.resolve()
        raise BenchError(
            f"{directory} is not a benchmarks directory "
            f"(no bench_*.py scripts found)"
        )
    candidates: List[pathlib.Path] = []
    env = os.environ.get("REPRO_BENCH_DIR")
    if env:
        candidates.append(pathlib.Path(env))
    candidates.append(pathlib.Path.cwd() / "benchmarks")
    candidates.append(pathlib.Path(__file__).resolve().parents[3] / "benchmarks")
    for candidate in candidates:
        if candidate.is_dir() and list(candidate.glob("bench_*.py")):
            return candidate.resolve()
    raise BenchError(
        "cannot locate the benchmarks/ directory; pass --bench-dir or set "
        "REPRO_BENCH_DIR (looked at: "
        + ", ".join(str(c) for c in candidates) + ")"
    )


def _load_script(path: pathlib.Path):
    module_name = f"{_MODULE_NAMESPACE}.{path.stem}"
    spec = importlib.util.spec_from_file_location(module_name, path)
    if spec is None or spec.loader is None:  # pragma: no cover - defensive
        raise BenchError(f"cannot build an import spec for {path}")
    module = importlib.util.module_from_spec(spec)
    # Register before exec so dataclasses/pickling inside the script
    # can resolve their own module.
    sys.modules[module_name] = module
    try:
        spec.loader.exec_module(module)
    except Exception as exc:
        sys.modules.pop(module_name, None)
        raise BenchError(f"importing benchmark script {path} failed: {exc}") from exc
    return module


def _spec_from_module(path: pathlib.Path, module) -> BenchSpec:
    run = getattr(module, "run", None)
    if not callable(run):
        raise BenchError(
            f"{path.name} does not expose a callable run(config) entrypoint"
        )
    tiers = tuple(getattr(module, "TIERS", (FULL_TIER,)))
    unknown = set(tiers) - {SMOKE_TIER, FULL_TIER}
    if unknown:
        raise BenchError(f"{path.name} declares unknown tiers {sorted(unknown)}")
    doc = (module.__doc__ or "").strip()
    description = doc.splitlines()[0] if doc else path.stem
    smoke_config = dict(getattr(module, "SMOKE_CONFIG", {}))
    if smoke_config and SMOKE_TIER not in tiers:
        raise BenchError(
            f"{path.name} has SMOKE_CONFIG but is not in the smoke tier"
        )
    name = path.stem[len("bench_"):]
    return BenchSpec(
        name=name, path=path, run=run, tiers=tiers,
        description=description, smoke_config=smoke_config,
    )


def discover(bench_dir: Optional[pathlib.Path] = None,
             tier: Optional[str] = None,
             names: Optional[List[str]] = None) -> List[BenchSpec]:
    """Import every bench script and return sorted :class:`BenchSpec` s.

    ``tier`` filters to benchmarks registered for that tier; ``names``
    filters to an explicit subset (exact registry names) and raises on
    unknown entries so typos fail fast.
    """
    directory = find_bench_dir(bench_dir)
    specs: List[BenchSpec] = []
    for path in sorted(directory.glob("bench_*.py")):
        module = _load_script(path)
        specs.append(_spec_from_module(path, module))
    if names:
        known = {spec.name: spec for spec in specs}
        missing = [n for n in names if n not in known]
        if missing:
            raise BenchError(
                f"unknown benchmark name(s): {', '.join(missing)} "
                f"(see 'repro bench list')"
            )
        specs = [known[n] for n in names]
    if tier is not None:
        specs = [spec for spec in specs if tier in spec.tiers]
        if not specs:
            raise BenchError(f"no benchmarks registered for tier {tier!r}")
    return specs
