"""Staged load generation for the detection service.

The benchmark harness measures *how fast the service can go* when fed
as hard as possible; this module measures *how the service behaves at a
given offered rate* — the operational question capacity planning needs
(docs/OPERATIONS.md).  A load test is a ladder of stages, each either:

open loop
    Batches are released on a fixed schedule derived from the offered
    QPS, whether or not the previous batch finished — the generator
    models independent clients, so queueing delay shows up as submit
    latency and overload shows up as backpressure rejections (the
    batch is counted and dropped, never retried).
closed loop
    Batches are submitted back-to-back with no pacing; the achieved
    rate is the service's maximum sustainable throughput for this
    workload.

Each stage reports achieved QPS, submit-latency percentiles (p50, p95,
p99), and rejection counts.  ``find_knee`` reduces an open-loop ladder
to the saturation knee: the highest offered rate the service still
absorbed (achieved >= ``KNEE_ACHIEVED_FRACTION`` of offered with under
``KNEE_REJECT_FRACTION`` rejections).  Results feed the
``service_loadtest`` benchmark (``BENCH_service_loadtest.json``) and
the ``repro loadtest`` CLI.

Latency percentiles use linear interpolation between order statistics
(the same convention as ``numpy.percentile``'s default) so documented
numbers are reproducible from the raw samples.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Sequence, Tuple, Union

import numpy as np

from repro.errors import BackpressureError, ConfigurationError
from repro.ratings.events import Rating

__all__ = [
    "StageSpec",
    "StageResult",
    "KNEE_ACHIEVED_FRACTION",
    "KNEE_REJECT_FRACTION",
    "percentile",
    "make_workload",
    "run_stage",
    "run_stages",
    "find_knee",
    "parse_rates",
]

#: An open-loop stage "absorbed" its offered rate when it achieved at
#: least this fraction of it...
KNEE_ACHIEVED_FRACTION = 0.95
#: ...while rejecting (backpressure) under this fraction of offered
#: events.
KNEE_REJECT_FRACTION = 0.01

#: Default planted colluding pairs — the detection workload must make
#: the period close do real screening, not just count events.
PLANTED_PAIRS: Tuple[Tuple[int, int], ...] = ((4, 5), (6, 7))


class _SubmitService(Protocol):
    """The slice of the service surface the load generator drives."""

    def submit(self, ratings: Sequence[Rating]) -> int: ...

    def drain(self) -> None: ...


@dataclass(frozen=True)
class StageSpec:
    """One rung of the load ladder.

    ``offered_qps`` is events per second for an open-loop stage, or
    ``None`` for a closed-loop (maximum throughput) stage.  ``events``
    is the number of workload events this stage consumes; ``batch`` is
    the submit granularity (one HTTP POST in production maps to one
    ``submit`` here).
    """

    offered_qps: Optional[float]
    events: int
    batch: int = 50

    def __post_init__(self) -> None:
        if self.offered_qps is not None and not self.offered_qps > 0:
            raise ConfigurationError(
                f"offered_qps must be positive or None, "
                f"got {self.offered_qps}"
            )
        if self.events <= 0:
            raise ConfigurationError(
                f"stage events must be positive, got {self.events}"
            )
        if self.batch <= 0 or self.batch > self.events:
            raise ConfigurationError(
                f"batch must be in 1..events, got {self.batch}"
            )

    @property
    def mode(self) -> str:
        return "closed" if self.offered_qps is None else "open"


@dataclass(frozen=True)
class StageResult:
    """Measured outcome of one stage."""

    mode: str
    offered_qps: Optional[float]
    events_offered: int
    events_accepted: int
    events_rejected: int
    batches: int
    rejected_batches: int
    duration_s: float
    latency_ms_p50: float
    latency_ms_p95: float
    latency_ms_p99: float
    latency_ms_max: float

    @property
    def achieved_qps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.events_accepted / self.duration_s

    @property
    def reject_fraction(self) -> float:
        if self.events_offered == 0:
            return 0.0
        return self.events_rejected / self.events_offered

    def to_dict(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "offered_qps": self.offered_qps,
            "achieved_qps": self.achieved_qps,
            "events_offered": self.events_offered,
            "events_accepted": self.events_accepted,
            "events_rejected": self.events_rejected,
            "batches": self.batches,
            "rejected_batches": self.rejected_batches,
            "duration_s": self.duration_s,
            "latency_ms": {
                "p50": self.latency_ms_p50,
                "p95": self.latency_ms_p95,
                "p99": self.latency_ms_p99,
                "max": self.latency_ms_max,
            },
        }


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-th percentile by linear interpolation.

    Matches ``numpy.percentile``'s default (``linear``) method so the
    committed baseline numbers can be re-derived from raw samples with
    either implementation.  Empty input returns 0.0 — a stage where
    every batch was rejected has no latency signal, not an error.
    """
    if not 0 <= q <= 100:
        raise ConfigurationError(f"percentile q must be in 0..100, got {q}")
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


def make_workload(
    n: int,
    events: int,
    seed: int = 0,
    planted_pairs: Sequence[Tuple[int, int]] = PLANTED_PAIRS,
) -> List[Rating]:
    """A deterministic rating stream with planted colluding pairs.

    Background traffic is uniform random (80% positive); each planted
    pair boosts itself and draws honest negatives, so epoch closes
    exercise the gate + screen + join pipeline for real.  The planted
    block is prepended-shuffled into the stream deterministically from
    ``seed`` — two calls with equal arguments yield identical lists.
    """
    rng = np.random.default_rng(seed)
    raters = rng.integers(0, n, size=events)
    targets = rng.integers(0, n, size=events)
    keep = raters != targets
    raters, targets = raters[keep], targets[keep]
    values = np.where(rng.random(raters.size) < 0.8, 1, -1)
    out = [Rating(int(r), int(t), int(v), time=float(i))
           for i, (r, t, v) in enumerate(zip(raters, targets, values))]
    for a, b in planted_pairs:
        out.extend([Rating(a, b, 1), Rating(b, a, 1)] * 60)
        for critic in range(n - 10, n):
            out.extend([Rating(critic, a, -1), Rating(critic, b, -1)] * 4)
    order = rng.permutation(len(out))
    return [out[int(i)] for i in order]


def _batches(workload: Sequence[Rating], start: int, events: int,
             batch: int) -> List[List[Rating]]:
    """Slice ``events`` events from ``workload`` at ``start``, cycling."""
    if not workload:
        raise ConfigurationError("workload must not be empty")
    stream = [workload[(start + i) % len(workload)] for i in range(events)]
    return [stream[i:i + batch] for i in range(0, len(stream), batch)]


def run_stage(
    service: _SubmitService,
    workload: Sequence[Rating],
    spec: StageSpec,
    start: int = 0,
) -> StageResult:
    """Drive one stage against ``service`` and measure it.

    Open loop: batch ``k`` is released at ``k * batch / offered_qps``
    seconds after stage start; if the generator falls behind schedule
    it releases immediately (no coordinated omission — slow submits
    delay later releases only when the service itself is the
    bottleneck, and that shows up as latency).  A
    :class:`~repro.errors.BackpressureError` drops the batch and is
    counted; nothing retries, matching the documented 429 client
    contract where the retry is a *new* arrival.
    """
    batches = _batches(workload, start, spec.events, spec.batch)
    interval = (0.0 if spec.offered_qps is None
                else spec.batch / spec.offered_qps)
    latencies_ms: List[float] = []
    accepted = 0
    rejected = 0
    rejected_batches = 0
    stage_start = time.perf_counter()
    for index, batch in enumerate(batches):
        if interval:
            release = stage_start + index * interval
            delay = release - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
        begin = time.perf_counter()
        try:
            accepted += service.submit(batch)
        except BackpressureError:
            rejected += len(batch)
            rejected_batches += 1
        else:
            latencies_ms.append((time.perf_counter() - begin) * 1e3)
    # The stage ends when the service has *processed* its events, not
    # when the last batch hit a queue — drain is a barrier through
    # every shard, so achieved_qps measures detector throughput.
    service.drain()
    duration = time.perf_counter() - stage_start
    return StageResult(
        mode=spec.mode,
        offered_qps=spec.offered_qps,
        events_offered=spec.events,
        events_accepted=accepted,
        events_rejected=rejected,
        batches=len(batches),
        rejected_batches=rejected_batches,
        duration_s=duration,
        latency_ms_p50=percentile(latencies_ms, 50),
        latency_ms_p95=percentile(latencies_ms, 95),
        latency_ms_p99=percentile(latencies_ms, 99),
        latency_ms_max=max(latencies_ms, default=0.0),
    )


def run_stages(
    service: _SubmitService,
    workload: Sequence[Rating],
    stages: Sequence[StageSpec],
    warmup: int = 0,
) -> List[StageResult]:
    """Run a stage ladder, after an unmeasured closed-loop warmup.

    ``warmup`` events are submitted back-to-back first and excluded
    from every stage's numbers — they exist to fault in code paths and
    fill allocator pools, not to measure.  Stages then consume
    consecutive slices of the (cycled) workload.
    """
    if warmup < 0:
        raise ConfigurationError(f"warmup must be >= 0, got {warmup}")
    cursor = 0
    if warmup:
        run_stage(service, workload,
                  StageSpec(offered_qps=None, events=warmup,
                            batch=min(warmup, 50)))
        cursor = warmup
    results: List[StageResult] = []
    for spec in stages:
        results.append(run_stage(service, workload, spec, start=cursor))
        cursor += spec.events
    return results


def find_knee(
    results: Sequence[StageResult],
    achieved_fraction: float = KNEE_ACHIEVED_FRACTION,
    reject_fraction: float = KNEE_REJECT_FRACTION,
) -> Optional[StageResult]:
    """The saturation knee of an open-loop ladder.

    Returns the open-loop stage with the highest offered rate that the
    service still absorbed — achieved >= ``achieved_fraction`` of
    offered and rejections under ``reject_fraction`` of offered — or
    ``None`` when every stage overloaded (the knee is below the
    ladder).  Closed-loop stages are ignored: they have no offered
    rate to absorb.
    """
    knee: Optional[StageResult] = None
    for result in results:
        if result.mode != "open" or result.offered_qps is None:
            continue
        absorbed = (
            result.achieved_qps >= achieved_fraction * result.offered_qps
            and result.reject_fraction < reject_fraction
        )
        if absorbed and (knee is None
                         or result.offered_qps
                         > (knee.offered_qps or 0.0)):
            knee = result
    return knee


def parse_rates(text: str) -> List[Optional[float]]:
    """Parse a CLI rate ladder: ``"500,1000,max"``.

    Comma-separated offered QPS values; the token ``max`` (or ``0``)
    denotes a closed-loop stage.
    """
    rates: List[Optional[float]] = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        if token.lower() == "max":
            rates.append(None)
            continue
        try:
            value: Union[float, None] = float(token)
        except ValueError:
            raise ConfigurationError(
                f"rate must be a number or 'max', got {token!r}"
            ) from None
        rates.append(None if value == 0 else value)
    if not rates:
        raise ConfigurationError(f"no rates in {text!r}")
    return rates
