"""Cross-benchmark gates: the O(m·n) vs O(m·n²) growth-ratio check.

The paper's headline complexity claim (Propositions 4.1/4.2) is that
replacing the basic detector's row rescan with the Formula (2) screen
drops the per-period cost from O(m·n²) to O(m·n).  The smoke tier
re-verifies the claim on every CI run from the two scaling benches'
deterministic operation counts:

* each bench fits ``cost ~ c · n^k`` over its measured sizes;
* the gate asserts the basic exponent exceeds the optimized one by at
  least ``min_exponent_gap`` (default 0.5 — half an order of growth,
  far outside fit noise for the committed size grids) **and** that the
  raw end-to-end growth ratio orders the same way.

Because the inputs are unit-operation counts, not wall-clock, the gate
is immune to machine speed and CI jitter: it fails only when someone
actually changes how much work the detectors do.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional

from repro.errors import BenchError

__all__ = ["GROWTH_GATE_CHECK", "growth_ratio_gate", "apply_growth_gate"]

#: The check name injected into both scaling benches' result documents.
GROWTH_GATE_CHECK = "prop41_vs_prop42_growth"

#: Registry names of the two scaling benches the gate consumes.
BASIC_SCALING_BENCH = "prop41_basic_scaling"
OPTIMIZED_SCALING_BENCH = "prop42_optimized_scaling"


def _scaling_block(doc: Dict[str, Any], role: str) -> Dict[str, Any]:
    scaling = doc.get("payload", {}).get("scaling")
    if not scaling or "sizes" not in scaling or "operations" not in scaling:
        raise BenchError(
            f"{role} result {doc.get('name')!r} carries no scaling block; "
            "was it produced by the scaling bench's run()?"
        )
    if len(scaling["sizes"]) < 2:
        raise BenchError(f"{role} result needs >= 2 sizes for a growth ratio")
    return scaling


def growth_ratio_gate(basic_doc: Dict[str, Any],
                      optimized_doc: Dict[str, Any],
                      min_exponent_gap: float = 0.5) -> Dict[str, Any]:
    """Judge prop4.1 vs prop4.2 growth from two result documents.

    Returns a JSON-safe verdict block; ``["pass"]`` is the gate.
    """
    basic = _scaling_block(basic_doc, "basic")
    optimized = _scaling_block(optimized_doc, "optimized")
    if basic["sizes"] != optimized["sizes"]:
        raise BenchError(
            f"scaling benches measured different size grids: "
            f"{basic['sizes']} vs {optimized['sizes']}"
        )
    span = basic["sizes"][-1] / basic["sizes"][0]
    basic_growth = basic["operations"][-1] / basic["operations"][0]
    optimized_growth = optimized["operations"][-1] / optimized["operations"][0]
    # Empirical exponents from the end-to-end ratio (robust at 2 points,
    # consistent with the per-bench least-squares fit at more).
    basic_exponent = basic.get("exponent", math.log(basic_growth) / math.log(span))
    optimized_exponent = optimized.get(
        "exponent", math.log(optimized_growth) / math.log(span)
    )
    gap = basic_exponent - optimized_exponent
    verdict = {
        "pass": bool(gap >= min_exponent_gap and basic_growth > optimized_growth),
        "sizes": list(basic["sizes"]),
        "basic_exponent": float(basic_exponent),
        "optimized_exponent": float(optimized_exponent),
        "exponent_gap": float(gap),
        "min_exponent_gap": float(min_exponent_gap),
        "basic_growth": float(basic_growth),
        "optimized_growth": float(optimized_growth),
    }
    return verdict


def apply_growth_gate(docs: Dict[str, Dict[str, Any]],
                      min_exponent_gap: float = 0.5
                      ) -> Optional[Dict[str, Any]]:
    """Run the gate over a name→document batch when both benches ran.

    Mutates the two scaling documents in place: the verdict lands under
    ``growth_gate`` and its boolean under ``checks`` so the regression
    tooling and plain JSON readers both see it.  Returns the verdict,
    or ``None`` when the batch lacks either scaling bench.
    """
    basic = docs.get(BASIC_SCALING_BENCH)
    optimized = docs.get(OPTIMIZED_SCALING_BENCH)
    if basic is None or optimized is None:
        return None
    verdict = growth_ratio_gate(basic, optimized, min_exponent_gap)
    for doc in (basic, optimized):
        doc["growth_gate"] = verdict
        doc["checks"][GROWTH_GATE_CHECK] = verdict["pass"]
    return verdict
