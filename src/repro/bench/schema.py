"""The benchmark result schema and the environment fingerprint.

Every harness run emits one JSON document per benchmark
(``BENCH_<name>.json`` at the repository root).  The schema is
deliberately small and hand-validated — no external JSON-schema
dependency — because the regression gate and CI both need to *trust*
these files, and a loud validation error beats a silently malformed
trajectory.

Document layout (``SCHEMA_VERSION`` = 2)::

    {
      "schema_version": 2,
      "name": "prop42_optimized_scaling",     # registry name
      "description": "...",                   # first docstring line
      "tiers": ["smoke", "full"],
      "config": {...},                        # the config run() received
      "trials": 3,
      "wall_clock": {                         # seconds, over `trials` runs
        "unit": "seconds",
        "per_trial": [...], "mean": f, "median": f,
        "min": f, "max": f, "stdev": f
      },
      "ops": {...} | null,                    # deterministic OpCounter totals
      "accuracy": {...} | null,               # precision/recall where defined
      "memory": {...} | null,                 # v2: peak-memory measurements
                                              # reported by the bench (bytes)
      "checks": {"name": bool, ...},          # shape assertions
      "payload": {...},                       # full run() return value
      "growth_gate": {...},                   # only on scaling benches when
                                              # the cross-bench gate ran
      "environment": {
        "python": "3.12.3", "implementation": "CPython",
        "numpy": "1.26.4", "platform": "...", "cpu_count": 8,
        "git_sha": "abc123..." | null, "repro_version": "1.0.0",
        "matrix_backend": "dense"             # v2: process-default engine
      },
      "created_utc": 1754500000.0
    }

``ops`` is the load-bearing half of the trajectory: operation counts
are *deterministic* (same config, same counts, any machine), so an ops
regression is a real algorithmic regression, never timer noise.

Version history
---------------
* **1** — initial layout.
* **2** — adds the optional top-level ``memory`` block (peak-memory
  measurements for benches that track allocation, e.g. the sparse
  scaling bench) and the ``matrix_backend`` environment key.  Version-1
  documents remain valid: readers accept both versions and treat the
  new fields as absent.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import statistics
import subprocess
from typing import Any, Dict, List, Optional, Sequence

from repro._version import __version__
from repro.errors import BenchError

__all__ = [
    "SCHEMA_VERSION",
    "ACCEPTED_SCHEMA_VERSIONS",
    "RESULT_PREFIX",
    "environment_fingerprint",
    "wall_clock_stats",
    "result_filename",
    "validate_result",
    "dump_result",
    "load_result",
]

SCHEMA_VERSION = 2

#: Older schema versions still accepted by :func:`validate_result` /
#: :func:`load_result` — committed ``BENCH_*.json`` baselines are not
#: invalidated by a version bump.
ACCEPTED_SCHEMA_VERSIONS = frozenset({1, SCHEMA_VERSION})

#: Result files are ``BENCH_<name>.json`` so the perf trajectory is
#: visible (and diffable) at the repository root.
RESULT_PREFIX = "BENCH_"


def environment_fingerprint(repo_dir: Optional[pathlib.Path] = None) -> Dict[str, Any]:
    """Describe the machine/toolchain a result was measured on.

    ``git_sha`` is best-effort: ``None`` outside a git checkout (e.g.
    an installed package running in a scratch directory).
    """
    try:
        import numpy
        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        numpy_version = None
    from repro.ratings.backends import get_default_backend

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": numpy_version,
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "git_sha": _git_sha(repo_dir),
        "repro_version": __version__,
        "matrix_backend": get_default_backend(),
    }


def _git_sha(repo_dir: Optional[pathlib.Path]) -> Optional[str]:
    cwd = str(repo_dir) if repo_dir is not None else None
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10, cwd=cwd,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def wall_clock_stats(per_trial: Sequence[float]) -> Dict[str, Any]:
    """Collapse per-trial wall-clock seconds into the schema's stats block."""
    if not per_trial:
        raise BenchError("wall_clock_stats requires at least one trial")
    times = [float(t) for t in per_trial]
    return {
        "unit": "seconds",
        "per_trial": times,
        "mean": statistics.fmean(times),
        "median": statistics.median(times),
        "min": min(times),
        "max": max(times),
        "stdev": statistics.stdev(times) if len(times) > 1 else 0.0,
    }


def result_filename(name: str) -> str:
    """The on-disk filename for benchmark ``name``."""
    return f"{RESULT_PREFIX}{name}.json"


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
_REQUIRED_TOP = {
    "schema_version": int,
    "name": str,
    "tiers": list,
    "config": dict,
    "trials": int,
    "wall_clock": dict,
    "checks": dict,
    "payload": dict,
    "environment": dict,
}
_REQUIRED_WALL = {"unit", "per_trial", "mean", "median", "min", "max", "stdev"}
_REQUIRED_ENV = {"python", "implementation", "numpy", "platform", "cpu_count",
                 "git_sha", "repro_version"}


def validate_result(doc: Any) -> List[str]:
    """Schema-check one result document; return the list of violations.

    An empty list means the document is valid.  Use
    ``assert not validate_result(doc)`` in tests, or raise on the list
    in pipeline code.
    """
    errors: List[str] = []
    if not isinstance(doc, dict):
        return [f"document must be an object, got {type(doc).__name__}"]
    for key, typ in _REQUIRED_TOP.items():
        if key not in doc:
            errors.append(f"missing required key {key!r}")
        elif not isinstance(doc[key], typ):
            errors.append(
                f"{key!r} must be {typ.__name__}, got {type(doc[key]).__name__}"
            )
    if errors:
        return errors
    if doc["schema_version"] not in ACCEPTED_SCHEMA_VERSIONS:
        errors.append(
            f"schema_version {doc['schema_version']} not in "
            f"{sorted(ACCEPTED_SCHEMA_VERSIONS)}"
        )
    wall = doc["wall_clock"]
    missing = _REQUIRED_WALL - set(wall)
    if missing:
        errors.append(f"wall_clock missing {sorted(missing)}")
    else:
        if not isinstance(wall["per_trial"], list) or not wall["per_trial"]:
            errors.append("wall_clock.per_trial must be a non-empty list")
        elif len(wall["per_trial"]) != doc["trials"]:
            errors.append(
                f"wall_clock has {len(wall['per_trial'])} trials, "
                f"document says {doc['trials']}"
            )
        for stat in ("mean", "median", "min", "max"):
            value = wall.get(stat)
            if not isinstance(value, (int, float)) or value < 0:
                errors.append(f"wall_clock.{stat} must be a non-negative number")
    missing_env = _REQUIRED_ENV - set(doc["environment"])
    if missing_env:
        errors.append(f"environment missing {sorted(missing_env)}")
    for name, ok in doc["checks"].items():
        if not isinstance(ok, bool):
            errors.append(f"checks[{name!r}] must be a bool")
    for key in ("ops", "accuracy", "memory"):
        if key in doc and doc[key] is not None and not isinstance(doc[key], dict):
            errors.append(f"{key!r} must be an object or null")
    return errors


def dump_result(doc: Dict[str, Any], path: pathlib.Path) -> pathlib.Path:
    """Validate and persist one result document (the versioned writer).

    Every ``BENCH_*.json`` write in the repository goes through here
    (REP005): the document is schema-checked *before* it reaches disk,
    so a malformed result can never silently poison the committed
    perf-trajectory baselines.
    """
    problems = validate_result(doc)
    if problems:
        raise BenchError(
            f"refusing to write invalid benchmark result to {path}: "
            + "; ".join(problems)
        )
    path = pathlib.Path(path)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def load_result(path: pathlib.Path) -> Dict[str, Any]:
    """Read and validate one ``BENCH_*.json`` file."""
    path = pathlib.Path(path)
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise BenchError(f"cannot read benchmark result {path}: {exc}") from exc
    problems = validate_result(doc)
    if problems:
        raise BenchError(
            f"{path} fails schema validation: " + "; ".join(problems)
        )
    return doc
