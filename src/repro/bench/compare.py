"""The perf-regression gate: compare two sets of ``BENCH_*.json``.

``repro bench compare --baseline <file|dir> [--current <file|dir>]
--max-regress 20%`` loads both sides, matches documents by benchmark
name, and fails (non-zero exit) when the chosen metric regressed past
the allowance on any shared benchmark — the mechanism that makes
"every PR keeps the hot paths fast" falsifiable in CI.

Two metrics are supported:

* ``wall`` (default): mean wall-clock seconds.  Honest but noisy;
  give it headroom (the default allowance is 20%).
* ``ops``: total deterministic unit operations.  Noise-free — any
  growth is an algorithmic change — so it can be gated at 0%.  Ops are
  only compared when both sides ran the *same config* (otherwise the
  counts measure different workloads) and both recorded counts.

Benchmarks present on only one side are reported but never fail the
gate (new benchmarks must not break CI retroactively; removed ones are
the diff's business).  A failed check (``checks_pass`` false) on the
current side *does* fail the gate — a benchmark whose shape assertions
broke is worse than a slow one.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.bench.schema import RESULT_PREFIX, load_result
from repro.errors import BenchError

__all__ = [
    "parse_allowance",
    "load_result_set",
    "ComparisonRow",
    "ComparisonReport",
    "compare_result_sets",
]


def parse_allowance(text: str) -> float:
    """Parse a regression allowance into a fraction.

    ``"20%"`` → 0.20; a bare number > 1 is treated as a percentage
    (``"20"`` → 0.20) and a bare number <= 1 as a fraction
    (``"0.2"`` → 0.20), so both CLI habits work.
    """
    raw = text.strip()
    is_percent = raw.endswith("%")
    if is_percent:
        raw = raw[:-1].strip()
    try:
        value = float(raw)
    except ValueError as exc:
        raise BenchError(f"cannot parse regression allowance {text!r}") from exc
    if is_percent or value > 1.0:
        value /= 100.0
    if value < 0:
        raise BenchError(f"regression allowance must be >= 0, got {text!r}")
    return value


def load_result_set(path: pathlib.Path) -> Dict[str, Dict[str, Any]]:
    """Load one ``BENCH_*.json`` file, or every one under a directory."""
    path = pathlib.Path(path)
    if path.is_dir():
        files = sorted(path.glob(f"{RESULT_PREFIX}*.json"))
        if not files:
            raise BenchError(f"no {RESULT_PREFIX}*.json files under {path}")
    elif path.is_file():
        files = [path]
    else:
        raise BenchError(f"baseline path {path} does not exist")
    docs: Dict[str, Dict[str, Any]] = {}
    for file in files:
        doc = load_result(file)
        docs[doc["name"]] = doc
    return docs


@dataclass
class ComparisonRow:
    """One benchmark's baseline-vs-current verdict."""

    name: str
    status: str  # "ok" | "regressed" | "improved" | "baseline-only" | "new"
    metric: str = "wall"
    baseline: Optional[float] = None
    current: Optional[float] = None
    delta_fraction: Optional[float] = None
    checks_pass: Optional[bool] = None
    note: str = ""

    @property
    def failed(self) -> bool:
        return self.status == "regressed" or self.checks_pass is False


@dataclass
class ComparisonReport:
    """The full gate outcome over a result-set pair."""

    metric: str
    allowance: float
    rows: List[ComparisonRow] = field(default_factory=list)

    @property
    def failures(self) -> List[ComparisonRow]:
        return [row for row in self.rows if row.failed]

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [
            f"perf gate: metric={self.metric} "
            f"allowance={self.allowance:.0%}",
            f"{'benchmark':34s} {'baseline':>12s} {'current':>12s} "
            f"{'delta':>8s}  status",
        ]
        for row in sorted(self.rows, key=lambda r: r.name):
            base = f"{row.baseline:.6g}" if row.baseline is not None else "-"
            cur = f"{row.current:.6g}" if row.current is not None else "-"
            delta = (f"{row.delta_fraction:+.1%}"
                     if row.delta_fraction is not None else "-")
            status = row.status.upper() if row.failed else row.status
            note = f"  ({row.note})" if row.note else ""
            lines.append(
                f"{row.name:34s} {base:>12s} {cur:>12s} {delta:>8s}  "
                f"{status}{note}"
            )
        verdict = "OK" if self.ok else (
            f"FAIL: {len(self.failures)} benchmark(s) regressed or broke"
        )
        lines.append(verdict)
        return "\n".join(lines)


def _metric_value(doc: Dict[str, Any], metric: str) -> Optional[float]:
    if metric == "wall":
        return float(doc["wall_clock"]["mean"])
    if metric == "ops":
        ops = doc.get("ops") or {}
        total = ops.get("total_operations")
        return float(total) if total is not None else None
    raise BenchError(f"unknown comparison metric {metric!r} (wall|ops)")


def compare_result_sets(baseline: Dict[str, Dict[str, Any]],
                        current: Dict[str, Dict[str, Any]],
                        allowance: float = 0.20,
                        metric: str = "wall") -> ComparisonReport:
    """Gate ``current`` against ``baseline``; see the module docstring."""
    report = ComparisonReport(metric=metric, allowance=allowance)
    for name in sorted(set(baseline) | set(current)):
        if name not in current:
            report.rows.append(ComparisonRow(
                name=name, status="baseline-only", metric=metric,
                baseline=_metric_value(baseline[name], metric),
                note="not measured on the current side",
            ))
            continue
        cur_doc = current[name]
        checks_pass = all(cur_doc["checks"].values()) if cur_doc["checks"] else True
        if name not in baseline:
            report.rows.append(ComparisonRow(
                name=name, status="new", metric=metric,
                current=_metric_value(cur_doc, metric),
                checks_pass=checks_pass,
                note="no baseline; gate skipped",
            ))
            continue
        base_doc = baseline[name]
        base_value = _metric_value(base_doc, metric)
        cur_value = _metric_value(cur_doc, metric)
        note = ""
        if metric == "ops" and base_doc["config"] != cur_doc["config"]:
            # Different workloads: counts are incomparable.
            base_value = cur_value = None
            note = "configs differ; ops not comparable"
        if base_value is None or cur_value is None:
            report.rows.append(ComparisonRow(
                name=name, status="ok", metric=metric,
                checks_pass=checks_pass,
                note=note or f"no {metric} metric recorded",
            ))
            continue
        delta = (cur_value - base_value) / base_value if base_value else 0.0
        if delta > allowance:
            status = "regressed"
        elif delta < -allowance:
            status = "improved"
        else:
            status = "ok"
        report.rows.append(ComparisonRow(
            name=name, status=status, metric=metric,
            baseline=base_value, current=cur_value,
            delta_fraction=delta, checks_pass=checks_pass,
            note="" if checks_pass else "shape checks FAILED",
        ))
    return report
