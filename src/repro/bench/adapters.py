"""Adapters that turn experiment functions into harness entrypoints.

The harness contract every ``benchmarks/bench_*.py`` script satisfies:

* importing the module performs **no work** (no simulation, no file
  writes, no prints) — the registry imports all of them just to list
  the suite;
* the module exposes ``run(config: dict | None) -> dict``: one
  side-effect-free execution of the benchmark's workload returning a
  JSON-serializable payload;
* ``python benchmarks/bench_<name>.py`` prints that payload (the only
  place a bench script is allowed to write to stdout).

Most bench scripts wrap a :class:`repro.experiments.FigureResult`
experiment; :func:`experiment_entrypoint` builds their ``run`` in one
line.  The payload it produces::

    {
      "kind": "figure",
      "figure_id": "prop4.2", "title": "...",
      "checks": {...}, "checks_pass": true,
      "series": {...},               # JSON-safe copy of result.series
      "accuracy": {...} | null,      # precision/recall series if present
      "ops": {...} | null,           # operation counts if the result has any
      "scaling": {"sizes": [...], "operations": [...], "exponent": k}
                                     # only for n_nodes/operations tables
    }
"""

from __future__ import annotations

import inspect
import json
import os
import time
from typing import Any, Callable, Dict, Optional

from repro.errors import BenchError
from repro.experiments.result import FigureResult

__all__ = [
    "experiment_entrypoint",
    "figure_payload",
    "merge_config",
    "bench_main",
]

#: Config keys every entrypoint understands regardless of the wrapped
#: experiment's signature.  ``repeats`` maps onto the experiment
#: harness's ``REPRO_REPEATS`` averaging knob.
_COMMON_KEYS = frozenset({"repeats"})

#: Series whose inner keys look like detection-quality metrics are
#: surfaced in the payload's ``accuracy`` block.
_ACCURACY_KEYS = frozenset({"precision", "recall", "f1", "false_positives"})


def merge_config(defaults: Dict[str, Any],
                 config: Optional[Dict[str, Any]],
                 allowed: Optional[frozenset] = None) -> Dict[str, Any]:
    """Overlay ``config`` on ``defaults``, rejecting unknown keys loudly."""
    merged = dict(defaults)
    for key, value in (config or {}).items():
        if allowed is not None and key not in allowed:
            raise BenchError(
                f"unknown benchmark config key {key!r} "
                f"(allowed: {sorted(allowed)})"
            )
        merged[key] = value
    return merged


def _json_safe(value: Any) -> Any:
    """Recursively coerce numpy scalars / tuple keys into JSON-safe types."""
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, bool):
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    if isinstance(value, (int, float, str)) or value is None:
        return value
    return str(value)


def figure_payload(result: FigureResult) -> Dict[str, Any]:
    """Convert a :class:`FigureResult` into the harness payload dict."""
    payload: Dict[str, Any] = {
        "kind": "figure",
        "figure_id": result.figure_id,
        "title": result.title,
        "checks": {name: bool(ok) for name, ok in result.checks.items()},
        "checks_pass": result.all_checks_pass(),
        "series": _json_safe(result.series),
        "accuracy": None,
        "ops": None,
    }
    accuracy = {
        name: _json_safe(series)
        for name, series in result.series.items()
        if isinstance(series, dict) and set(series) & _ACCURACY_KEYS
    }
    if accuracy:
        payload["accuracy"] = accuracy
    headers = [str(h) for h in result.headers]
    if headers == ["n_nodes", "operations"] and result.rows:
        sizes = [int(row[0]) for row in result.rows]
        operations = [float(row[1]) for row in result.rows]
        scaling: Dict[str, Any] = {"sizes": sizes, "operations": operations}
        fit = result.series.get("fit", {})
        if "exponent" in fit:
            scaling["exponent"] = float(fit["exponent"])
            scaling["expected_exponent"] = float(fit.get("expected", 0.0))
        payload["scaling"] = scaling
        payload["ops"] = {"total_operations": sum(operations)}
    return payload


def experiment_entrypoint(
    experiment: Callable[..., FigureResult],
) -> Callable[[Optional[Dict[str, Any]]], Dict[str, Any]]:
    """Build a harness ``run(config)`` around a FigureResult experiment.

    ``config`` keys are matched against the experiment's keyword
    parameters (``sizes``, ``seed``, ``n`` …), so the smoke tier can
    shrink a scaling bench without the bench script knowing.  The one
    harness-level key is ``repeats``, applied via the experiment
    harness's ``REPRO_REPEATS`` environment knob for the duration of
    the call and restored afterwards.
    """
    params = inspect.signature(experiment).parameters
    allowed = frozenset(params) | _COMMON_KEYS

    def run(config: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        merged = merge_config({}, config, allowed=allowed)
        repeats = merged.pop("repeats", None)
        saved = os.environ.get("REPRO_REPEATS")
        try:
            if repeats is not None:
                os.environ["REPRO_REPEATS"] = str(int(repeats))
            result = experiment(**merged)
        finally:
            if repeats is not None:
                if saved is None:
                    os.environ.pop("REPRO_REPEATS", None)
                else:
                    os.environ["REPRO_REPEATS"] = saved
        return figure_payload(result)

    run.__doc__ = experiment.__doc__
    run.experiment = experiment  # type: ignore[attr-defined]
    return run


def bench_main(run: Callable[[Optional[Dict[str, Any]]], Dict[str, Any]],
               config: Optional[Dict[str, Any]] = None) -> int:
    """``__main__`` body shared by every bench script.

    Executes ``run`` once with ``config`` (default config when omitted),
    prints the payload as JSON with the elapsed wall-clock, and returns
    a shell exit code: 0 when every payload check passed, 1 otherwise.
    """
    start = time.perf_counter()
    payload = run(config)
    elapsed = time.perf_counter() - start
    print(json.dumps({"wall_clock_s": elapsed, "payload": payload}, indent=2))
    return 0 if payload.get("checks_pass", True) else 1
