"""``repro.bench`` — the unified benchmark harness.

Wraps every ``benchmarks/bench_*.py`` script behind one contract
(side-effect-free ``run(config) -> dict``), runs them over repeated
trials, emits schema-validated ``BENCH_<name>.json`` documents with an
environment fingerprint and deterministic operation counts, and gates
changes with a baseline comparison (``repro bench compare``) plus the
prop4.1-vs-prop4.2 growth-ratio check that re-verifies the paper's
O(m·n) claim on every smoke run.

See ``docs/BENCHMARKS.md`` for the architecture, the result schema,
and how to add a benchmark.
"""

from repro.bench.adapters import (
    bench_main,
    experiment_entrypoint,
    figure_payload,
    merge_config,
)
from repro.bench.compare import (
    ComparisonReport,
    ComparisonRow,
    compare_result_sets,
    load_result_set,
    parse_allowance,
)
from repro.bench.gates import (
    GROWTH_GATE_CHECK,
    apply_growth_gate,
    growth_ratio_gate,
)
from repro.bench.loadgen import (
    StageResult,
    StageSpec,
    find_knee,
    make_workload,
    parse_rates,
    percentile,
    run_stage,
    run_stages,
)
from repro.bench.registry import (
    FULL_TIER,
    SMOKE_TIER,
    BenchSpec,
    discover,
    find_bench_dir,
)
from repro.bench.runner import (
    render_summary,
    run_benchmark,
    run_suite,
    write_result,
)
from repro.bench.schema import (
    RESULT_PREFIX,
    SCHEMA_VERSION,
    environment_fingerprint,
    load_result,
    result_filename,
    validate_result,
)

__all__ = [
    "bench_main",
    "experiment_entrypoint",
    "figure_payload",
    "merge_config",
    "ComparisonReport",
    "ComparisonRow",
    "compare_result_sets",
    "load_result_set",
    "parse_allowance",
    "StageResult",
    "StageSpec",
    "find_knee",
    "make_workload",
    "parse_rates",
    "percentile",
    "run_stage",
    "run_stages",
    "GROWTH_GATE_CHECK",
    "apply_growth_gate",
    "growth_ratio_gate",
    "FULL_TIER",
    "SMOKE_TIER",
    "BenchSpec",
    "discover",
    "find_bench_dir",
    "render_summary",
    "run_benchmark",
    "run_suite",
    "write_result",
    "RESULT_PREFIX",
    "SCHEMA_VERSION",
    "environment_fingerprint",
    "load_result",
    "result_filename",
    "validate_result",
]
