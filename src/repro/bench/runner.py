"""Execute registered benchmarks and emit ``BENCH_<name>.json``.

One :func:`run_benchmark` call runs a bench's ``run(config)`` for
``trials`` repetitions, wraps the last payload with wall-clock stats,
deterministic operation counts, the config, and the environment
fingerprint, and returns a schema-valid document
(:mod:`repro.bench.schema`).  :func:`run_suite` drives a whole tier,
applies the cross-bench growth gate, and (optionally) writes the
documents to disk — the repository's perf trajectory.

Trial policy: wall-clock statistics are computed over *all* trials,
but the payload kept in the document is the last trial's (payloads are
deterministic for fixed config, so any trial's would do).
"""

from __future__ import annotations

import pathlib
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.bench import gates, schema
from repro.bench.registry import BenchSpec
from repro.errors import BenchError

__all__ = ["run_benchmark", "run_suite", "write_result", "render_summary"]


def run_benchmark(spec: BenchSpec,
                  config: Optional[Dict[str, Any]] = None,
                  trials: int = 3,
                  repo_dir: Optional[pathlib.Path] = None) -> Dict[str, Any]:
    """Run one benchmark and return its schema-valid result document."""
    if trials < 1:
        raise BenchError(f"trials must be >= 1, got {trials}")
    per_trial: List[float] = []
    payload: Dict[str, Any] = {}
    for _ in range(trials):
        start = time.perf_counter()
        payload = spec.run(config)
        per_trial.append(time.perf_counter() - start)
    if not isinstance(payload, dict):
        raise BenchError(
            f"benchmark {spec.name!r} run() must return a dict, "
            f"got {type(payload).__name__}"
        )
    doc: Dict[str, Any] = {
        "schema_version": schema.SCHEMA_VERSION,
        "name": spec.name,
        "description": spec.description,
        "tiers": list(spec.tiers),
        "config": dict(config or {}),
        "trials": trials,
        "wall_clock": schema.wall_clock_stats(per_trial),
        "ops": payload.get("ops"),
        "accuracy": payload.get("accuracy"),
        "memory": payload.get("memory"),
        "checks": dict(payload.get("checks", {})),
        "payload": payload,
        "environment": schema.environment_fingerprint(repo_dir),
        "created_utc": time.time(),
    }
    problems = schema.validate_result(doc)
    if problems:  # pragma: no cover - harness bug, not user error
        raise BenchError(
            f"runner produced an invalid document for {spec.name}: "
            + "; ".join(problems)
        )
    return doc


def write_result(doc: Dict[str, Any], out_dir: pathlib.Path) -> pathlib.Path:
    """Write one result document as ``BENCH_<name>.json`` under ``out_dir``."""
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / schema.result_filename(doc["name"])
    return schema.dump_result(doc, path)


def run_suite(specs: Sequence[BenchSpec],
              tier: str,
              trials: int = 3,
              out_dir: Optional[pathlib.Path] = None,
              repo_dir: Optional[pathlib.Path] = None,
              progress=None) -> Dict[str, Dict[str, Any]]:
    """Run ``specs`` for ``tier``, gate, optionally persist; return docs.

    ``progress`` is an optional ``callable(str)`` used for per-bench
    status lines (the CLI passes ``print``; tests pass nothing).
    """
    docs: Dict[str, Dict[str, Any]] = {}
    for spec in specs:
        config = spec.config_for_tier(tier)
        if progress:
            progress(f"running {spec.name} (trials={trials}"
                     f"{', smoke config' if config else ''}) ...")
        docs[spec.name] = run_benchmark(
            spec, config=config, trials=trials, repo_dir=repo_dir
        )
    verdict = gates.apply_growth_gate(docs)
    if progress and verdict is not None:
        progress(
            f"growth gate: basic n^{verdict['basic_exponent']:.2f} vs "
            f"optimized n^{verdict['optimized_exponent']:.2f} -> "
            f"{'PASS' if verdict['pass'] else 'FAIL'}"
        )
    if out_dir is not None:
        for doc in docs.values():
            path = write_result(doc, out_dir)
            if progress:
                progress(f"wrote {path}")
    return docs


def render_summary(docs: Dict[str, Dict[str, Any]]) -> str:
    """A one-line-per-bench table of the suite's outcome."""
    lines = [f"{'benchmark':34s} {'mean':>10s} {'ops':>12s}  checks"]
    for name in sorted(docs):
        doc = docs[name]
        mean = doc["wall_clock"]["mean"]
        ops = doc.get("ops") or {}
        total_ops = ops.get("total_operations")
        ops_text = f"{total_ops:,.0f}" if total_ops is not None else "-"
        checks = doc["checks"]
        if checks:
            failed = [k for k, ok in checks.items() if not ok]
            check_text = "PASS" if not failed else "FAIL: " + ", ".join(failed)
        else:
            check_text = "-"
        lines.append(f"{name:34s} {mean:9.3f}s {ops_text:>12s}  {check_text}")
    return "\n".join(lines)
