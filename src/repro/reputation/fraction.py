"""Amazon-style positive-fraction reputation.

"A seller's reputation is simply calculated by dividing the number of
positive ratings by the sum of all ratings" (paper Section III).  Used
by the synthetic Amazon trace analysis to place sellers on the paper's
0.67-0.98 reputation spectrum.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.ratings.matrix import RatingMatrix
from repro.reputation.base import ReputationSystem
from repro.util.counters import OpCounter
from repro.util.validation import check_non_negative

__all__ = ["PositiveFractionReputation"]


class PositiveFractionReputation(ReputationSystem):
    """``R_i = N+_i / (N+_i + N-_i)`` with a configurable Laplace prior.

    Parameters
    ----------
    prior_positive, prior_total:
        Pseudo-counts added to numerator / denominator.  The default
        ``(0, 0)`` matches Amazon exactly, with unrated nodes given
        :attr:`default` .
    default:
        Reputation assigned to nodes with no (non-neutral) ratings.
    count_neutral:
        When true, neutral ratings count toward the denominator
        (Amazon's 3-star behaviour depends on the product category; the
        paper's coding treats 3 as neutral, excluded by default).
    """

    name = "positive-fraction"

    def __init__(
        self,
        prior_positive: float = 0.0,
        prior_total: float = 0.0,
        default: float = 0.5,
        count_neutral: bool = False,
        ops: Optional[OpCounter] = None,
    ):
        super().__init__(ops)
        check_non_negative("prior_positive", prior_positive)
        check_non_negative("prior_total", prior_total)
        if prior_positive > prior_total:
            raise ConfigurationError(
                f"prior_positive ({prior_positive}) cannot exceed prior_total "
                f"({prior_total})"
            )
        if not 0.0 <= default <= 1.0:
            raise ConfigurationError(f"default must be in [0, 1], got {default}")
        self.prior_positive = float(prior_positive)
        self.prior_total = float(prior_total)
        self.default = float(default)
        self.count_neutral = count_neutral

    def compute(self, matrix: RatingMatrix) -> np.ndarray:
        pos = matrix.received_positive().astype(float)
        if self.count_neutral:
            den_counts = matrix.received_total().astype(float)
        else:
            den_counts = pos + matrix.received_negative().astype(float)
        self.ops.add("sum_reduce", 2 * matrix.n * matrix.n)
        num = pos + self.prior_positive
        den = den_counts + self.prior_total
        rep = np.full(matrix.n, self.default, dtype=float)
        np.divide(num, den, out=rep, where=den > 0)
        self.ops.add("divide", matrix.n)
        return rep
