"""Distributed EigenTrust aggregation over Chord-sharded managers.

The original EigenTrust paper computes global trust *distributedly*:
each manager iterates the trust values of its responsible nodes and
exchanges vector segments with the other managers every round.  The
paper reproduced here cites exactly that deployment ("EigenTrust forms
a number of high-reputed power nodes into a DHT for reputation
aggregation and calculation"), so this module provides it as a
substrate: the same fixed point as the centralized
:class:`~repro.reputation.eigentrust.EigenTrust`, plus realistic
communication accounting — one segment broadcast per manager per
iteration, routed over the Chord ring with per-message hop counts.

The numerical work is still performed on the in-memory global matrix
(this is a simulator, not an RPC system); what the distribution changes
is the *cost model*: messages, hops, and per-manager compute shares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ConvergenceError
from repro.reputation.decentralized import DecentralizedReputationSystem
from repro.reputation.eigentrust import EigenTrust, EigenTrustConfig

__all__ = ["DistributedEigenTrust", "DistributedTrustResult"]


@dataclass(frozen=True)
class DistributedTrustResult:
    """Outcome of one distributed aggregation round."""

    trust: np.ndarray
    iterations: int
    segment_messages: int
    total_hops: int
    per_manager_nodes: Dict[int, int]

    @property
    def messages_per_iteration(self) -> float:
        if self.iterations == 0:
            return 0.0
        return self.segment_messages / self.iterations


class DistributedEigenTrust:
    """EigenTrust power iteration executed across reputation shards.

    Parameters
    ----------
    system:
        The decentralized deployment holding the sharded ratings.
    config:
        EigenTrust parameters (alpha, epsilon, pretrusted ids...).

    Notes
    -----
    Per iteration, every manager must learn every other manager's
    updated trust segment; with ``K`` managers that is ``K * (K - 1)``
    segment messages, each routed over the ring (hops counted on the
    system's shared :class:`MessageCounter` under kind
    ``"trust_segment"``).
    """

    def __init__(
        self,
        system: DecentralizedReputationSystem,
        config: Optional[EigenTrustConfig] = None,
    ):
        self.system = system
        self.config = config if config is not None else EigenTrustConfig()
        # the centralized engine provides the per-iteration kernel
        self._engine = EigenTrust(self.config)

    # ------------------------------------------------------------------
    def _exchange_segments(self) -> Tuple[int, int]:
        """Route one all-to-all segment exchange; returns (msgs, hops)."""
        system = self.system
        manager_ids = sorted(system.shards)
        msgs = 0
        hops_total = 0
        for src in manager_ids:
            for dst in manager_ids:
                if src == dst:
                    continue
                _, hops = system.ring.find_successor(dst, start=src)
                system.messages.record("trust_segment", src, dst, hops)
                msgs += 1
                hops_total += hops
        return msgs, hops_total

    def compute(self) -> DistributedTrustResult:
        """Run the distributed aggregation to convergence.

        Returns the same trust vector the centralized computation
        produces on the union matrix (property-tested), together with
        the protocol cost.
        """
        cfg = self.config
        matrix = self.system.global_matrix()
        n = matrix.n
        c = self._engine.normalized_trust(matrix)
        p = self._engine._pretrust_distribution(n)
        ct = np.ascontiguousarray(c.T)

        t = p.copy()
        alpha = cfg.alpha
        segment_messages = 0
        total_hops = 0
        residual = np.inf
        iterations = 0
        for iteration in range(1, cfg.max_iterations + 1):
            iterations = iteration
            t_next = (1.0 - alpha) * (ct @ t) + alpha * p
            self._engine.ops.add("mac", n * n)
            msgs, hops = self._exchange_segments()
            segment_messages += msgs
            total_hops += hops
            residual = float(np.abs(t_next - t).sum())
            t = t_next
            if residual < cfg.epsilon:
                break
        else:
            if cfg.raise_on_nonconvergence:
                raise ConvergenceError(cfg.max_iterations, residual, cfg.epsilon)

        # publish each manager's segment
        for shard in self.system.shards.values():
            for node in shard.responsible:
                shard.published[node] = float(t[node])

        return DistributedTrustResult(
            trust=t,
            iterations=iterations,
            segment_messages=segment_messages,
            total_hops=total_hops,
            per_manager_nodes={
                mid: len(shard.responsible)
                for mid, shard in self.system.shards.items()
            },
        )
