"""Fading-memory reputation (TrustGuard-inspired baseline).

The paper's related work cites TrustGuard (Srivatsa et al., WWW 2005),
which "incorporates historical reputations and behavioral fluctuations
of nodes into the estimation of their trustworthiness".  The summation
and EigenTrust systems here are *cumulative* — a node that behaved well
for months can coast on its history after turning bad (the reputation
"milking" attack the behaviour schedule models).

:class:`FadingMemoryReputation` is the standard counter-measure: an
exponentially-weighted moving average over *period* reputations,

    ``R_t = decay * R_{t-1} + (1 - decay) * r_t``

where ``r_t`` is the current period's (optionally normalized) summation
reputation.  Small ``decay`` forgets quickly (fast milker response,
noisy scores); large ``decay`` approaches cumulative behaviour.

This system is **stateful across compute() calls** (each call is one
period), unlike the pure systems — mirroring how a real manager would
run it.  Call :meth:`reset` between experiments.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ratings.matrix import RatingMatrix
from repro.reputation.base import ReputationSystem
from repro.util.counters import OpCounter
from repro.util.validation import check_fraction

__all__ = ["FadingMemoryReputation"]


class FadingMemoryReputation(ReputationSystem):
    """EWMA of per-period summation reputations.

    Parameters
    ----------
    decay:
        History weight in ``[0, 1)``.  0 = memoryless (only the current
        period counts); 0.9 = long memory.
    normalize_periods:
        When true (default), each period's summation vector is scaled
        by its largest magnitude so periods with different activity
        levels contribute comparably.

    Notes
    -----
    ``compute`` must be fed **period** matrices (the caller windows the
    ledger); feeding cumulative matrices double-counts history.
    """

    name = "fading-memory"
    wants_period_matrix = True

    def __init__(
        self,
        decay: float = 0.5,
        normalize_periods: bool = True,
        ops: Optional[OpCounter] = None,
    ):
        super().__init__(ops)
        check_fraction("decay", decay, inclusive_high=False)
        self.decay = float(decay)
        self.normalize_periods = normalize_periods
        self._state: Optional[np.ndarray] = None
        self._periods = 0

    @property
    def periods_seen(self) -> int:
        """How many periods have been folded into the state."""
        return self._periods

    def reset(self) -> None:
        """Forget all history (start of a new experiment)."""
        self._state = None
        self._periods = 0

    def compute(self, matrix: RatingMatrix) -> np.ndarray:
        period = matrix.reputation_sum().astype(float)
        self.ops.add("sum_reduce", 2 * matrix.n * matrix.n)
        if self.normalize_periods:
            top = np.abs(period).max()
            if top > 0:
                period = period / top
            self.ops.add("normalize", matrix.n)
        if self._state is None or self._state.shape != period.shape:
            self._state = period.copy()
        else:
            self._state = self.decay * self._state + (1.0 - self.decay) * period
            self.ops.add("ewma", matrix.n)
        self._periods += 1
        return self._state.copy()
