"""EigenTrust (Kamvar, Schlosser, Garcia-Molina — WWW 2003).

The paper's comparison baseline.  EigenTrust aggregates *normalized
local trust* into a global trust vector via power iteration:

1. Local trust ``s_ij = max(sum of ratings i gave j, 0)``.
2. Row-normalize: ``c_ij = s_ij / sum_j s_ij``.  Nodes with no positive
   outgoing trust fall back to the pretrusted distribution ``p`` (as in
   the original paper), which also guarantees the iteration matrix is
   stochastic.
3. Iterate ``t <- (1 - alpha) * C^T t + alpha * p`` until
   ``||t_k+1 - t_k||_1 < epsilon``.

``alpha`` is the pretrust mixing weight: each pretrusted node holds an
unconditional floor of ``alpha / |P|`` global trust, which is how
EigenTrust "employs pretrusted nodes to combat collusion" (paper
Section V).  With no pretrusted nodes the fallback / mixing
distribution is uniform (plain PageRank-style trust).

Operation accounting: each power-iteration step costs ``n^2``
multiply-accumulates, recorded on the shared :class:`OpCounter` so
Figure 13 can compare against the detectors' costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional

import numpy as np

from repro.errors import ConfigurationError, ConvergenceError
from repro.ratings.matrix import RatingMatrix
from repro.reputation.base import ReputationSystem
from repro.util.counters import OpCounter
from repro.util.validation import check_fraction, check_int_range, check_positive

__all__ = ["EigenTrust", "EigenTrustConfig"]


@dataclass(frozen=True)
class EigenTrustConfig:
    """Parameters of the EigenTrust computation.

    Attributes
    ----------
    alpha:
        Pretrust mixing weight in ``[0, 1)``.  The reproduction default
        0.15 places each of 3 pretrusted nodes at a ~0.05 floor,
        matching the pretrusted-vs-colluder ordering in the paper's
        Figures 5-7.
    epsilon:
        L1 convergence tolerance of the power iteration.
    max_iterations:
        Hard cap; exceeding it raises
        :class:`repro.errors.ConvergenceError` unless
        ``raise_on_nonconvergence`` is false.
    pretrusted:
        Ids of pretrusted nodes (may be empty).
    raise_on_nonconvergence:
        When false, the last iterate is returned even if not converged.
    warm_start:
        When true, each :meth:`EigenTrust.compute` call starts the
        power iteration from the previous call's result instead of from
        the pretrust distribution.  In a running system the trust
        matrix changes little between reputation periods, so the
        iteration reconverges "within several iterations" (the paper's
        own cost assumption in Figure 13).  The fixed point is
        identical either way.
    """

    alpha: float = 0.15
    epsilon: float = 1e-8
    max_iterations: int = 2000
    pretrusted: FrozenSet[int] = field(default_factory=frozenset)
    raise_on_nonconvergence: bool = True
    warm_start: bool = False

    def __post_init__(self) -> None:
        check_fraction("alpha", self.alpha, inclusive_high=False)
        check_positive("epsilon", self.epsilon)
        check_int_range("max_iterations", self.max_iterations, 1)
        object.__setattr__(self, "pretrusted", frozenset(int(i) for i in self.pretrusted))
        for i in self.pretrusted:
            if i < 0:
                raise ConfigurationError(f"pretrusted ids must be non-negative, got {i}")


class EigenTrust(ReputationSystem):
    """Global trust via power iteration over normalized local trust.

    Parameters
    ----------
    config:
        An :class:`EigenTrustConfig`; a default one is created if omitted.
    ops:
        Shared operation counter (Figure 13 cost accounting).

    Attributes
    ----------
    last_iterations:
        Number of power-iteration steps the most recent
        :meth:`compute` call used (None before the first call).
    """

    name = "eigentrust"

    def __init__(self, config: Optional[EigenTrustConfig] = None,
                 ops: Optional[OpCounter] = None):
        super().__init__(ops)
        self.config = config if config is not None else EigenTrustConfig()
        self.last_iterations: Optional[int] = None
        self._warm_vector: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def local_trust(self, matrix: RatingMatrix) -> np.ndarray:
        """``s_ij = max(ratings i gave j summed, 0)`` for all pairs.

        The matrix is stored received-oriented (``[target, rater]``), so
        outgoing local trust is its transpose.
        """
        net = np.zeros((matrix.n, matrix.n), dtype=float)
        targets, raters, counts, pos = matrix.entries(effective=True)
        net[raters, targets] = (2 * pos - counts).astype(float)
        np.maximum(net, 0.0, out=net)
        self.ops.add("local_trust", matrix.n * matrix.n)
        return net

    def _pretrust_distribution(self, n: int) -> np.ndarray:
        pre = [i for i in self.config.pretrusted if i < n]
        if any(i >= n for i in self.config.pretrusted):
            raise ConfigurationError(
                f"pretrusted ids {sorted(self.config.pretrusted)} exceed universe size {n}"
            )
        p = np.zeros(n, dtype=float)
        if pre:
            p[pre] = 1.0 / len(pre)
        else:
            p[:] = 1.0 / n
        return p

    def normalized_trust(self, matrix: RatingMatrix) -> np.ndarray:
        """Row-stochastic trust matrix ``C`` with pretrust fallback rows."""
        s = self.local_trust(matrix)
        n = matrix.n
        p = self._pretrust_distribution(n)
        row_sums = s.sum(axis=1)
        self.ops.add("row_normalize", n * n)
        c = np.empty_like(s)
        has_trust = row_sums > 0
        # Vectorized: rows with outgoing trust are normalized, the rest
        # fall back to the pretrust distribution.
        np.divide(s, row_sums[:, np.newaxis], out=c, where=has_trust[:, np.newaxis])
        c[~has_trust] = p
        return c

    def compute(self, matrix: RatingMatrix) -> np.ndarray:
        """Power-iterate to the global trust vector (sums to 1)."""
        n = matrix.n
        cfg = self.config
        c = self.normalized_trust(matrix)
        p = self._pretrust_distribution(n)
        ct = np.ascontiguousarray(c.T)  # contiguous for repeated mat-vecs
        if (
            cfg.warm_start
            and self._warm_vector is not None
            and self._warm_vector.shape == (n,)
        ):
            t = self._warm_vector.copy()
        else:
            t = p.copy()
        alpha = cfg.alpha
        residual = np.inf
        for iteration in range(1, cfg.max_iterations + 1):
            t_next = (1.0 - alpha) * (ct @ t) + alpha * p
            self.ops.add("mac", n * n)
            residual = float(np.abs(t_next - t).sum())
            t = t_next
            if residual < cfg.epsilon:
                self.last_iterations = iteration
                if cfg.warm_start:
                    self._warm_vector = t.copy()
                return t
        self.last_iterations = cfg.max_iterations
        if cfg.raise_on_nonconvergence:
            raise ConvergenceError(cfg.max_iterations, residual, cfg.epsilon)
        if cfg.warm_start:
            self._warm_vector = t.copy()
        return t
