"""eBay / EigenTrust-style summation reputation.

"A node's final reputation is the sum of all its received reputation
evaluation values" (paper Section IV-A).  This is the local model the
paper's Formula (1) identity is derived for, so the collusion detectors
use it internally for the Formula-(2) screen regardless of which system
publishes the user-facing reputation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ratings.matrix import RatingMatrix
from repro.reputation.base import ReputationSystem
from repro.util.counters import OpCounter

__all__ = ["SummationReputation"]


class SummationReputation(ReputationSystem):
    """``R_i = N+_i - N-_i`` (neutral ratings contribute zero).

    Parameters
    ----------
    normalize:
        When true, the vector is divided by the total absolute mass so
        values are comparable across periods of different activity
        (used when mixing with normalized systems in reports).  The
        default is the paper's raw sum.
    """

    name = "summation"

    def __init__(self, normalize: bool = False, ops: Optional[OpCounter] = None):
        super().__init__(ops)
        self.normalize = normalize

    def compute(self, matrix: RatingMatrix) -> np.ndarray:
        rep = matrix.reputation_sum().astype(float)
        # one add per node pair cell touched: two row reductions over n^2 cells
        self.ops.add("sum_reduce", 2 * matrix.n * matrix.n)
        if self.normalize:
            mass = np.abs(rep).sum()
            if mass > 0:
                rep = rep / mass
            self.ops.add("normalize", matrix.n)
        return rep
