"""eBay / EigenTrust-style summation reputation.

"A node's final reputation is the sum of all its received reputation
evaluation values" (paper Section IV-A).  This is the local model the
paper's Formula (1) identity is derived for, so the collusion detectors
use it internally for the Formula-(2) screen regardless of which system
publishes the user-facing reputation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import numpy.typing as npt

from typing import Dict, List

from repro.errors import RatingError, UnknownNodeError
from repro.ratings.matrix import RatingMatrix
from repro.reputation.base import ReputationSystem
from repro.util.counters import OpCounter
from repro.util.validation import check_int_range

__all__ = ["SummationReputation", "SummationState"]


class SummationReputation(ReputationSystem):
    """``R_i = N+_i - N-_i`` (neutral ratings contribute zero).

    Parameters
    ----------
    normalize:
        When true, the vector is divided by the total absolute mass so
        values are comparable across periods of different activity
        (used when mixing with normalized systems in reports).  The
        default is the paper's raw sum.
    """

    name = "summation"

    def __init__(self, normalize: bool = False, ops: Optional[OpCounter] = None):
        super().__init__(ops)
        self.normalize = normalize

    def compute(self, matrix: RatingMatrix) -> np.ndarray:
        rep = matrix.reputation_sum().astype(float)
        # one add per node pair cell touched: two row reductions over n^2 cells
        self.ops.add("sum_reduce", 2 * matrix.n * matrix.n)
        if self.normalize:
            mass = np.abs(rep).sum()
            if mass > 0:
                rep = rep / mass
            self.ops.add("normalize", matrix.n)
        return rep


class SummationState:
    """Incrementally-maintained summation reputation, ``R_i = N+_i - N-_i``.

    :class:`SummationReputation` recomputes the vector from a full
    count matrix each period — the right shape for offline analysis but
    O(n^2) per refresh.  A live service ingesting one rating at a time
    wants O(1) updates instead; this accumulator keeps the per-node
    positive/negative totals and exposes the same vector at any moment.

    The state is *mergeable* (element-wise sum) and JSON-serializable,
    which is exactly what a target-partitioned deployment needs: each
    shard accumulates the totals for the targets it owns, and the
    coordinator folds the shard vectors together (or snapshots them for
    crash recovery).  No locking is done here — callers confine each
    instance to one thread (the service's shard workers do).
    """

    __slots__ = ("n", "_pos", "_neg")

    def __init__(self, n: int):
        check_int_range("n", n, 1)
        self.n = n
        self._pos = np.zeros(n, dtype=np.int64)
        self._neg = np.zeros(n, dtype=np.int64)

    def observe(self, target: int, value: int, count: int = 1) -> None:
        """Fold ``count`` identical ratings of ``target`` in — O(1)."""
        if not 0 <= target < self.n:
            raise UnknownNodeError(target, self.n)
        if value not in (-1, 0, 1):
            raise RatingError(f"rating value must be -1, 0 or +1, got {value!r}")
        if count < 0:
            raise RatingError(f"count must be non-negative, got {count}")
        if value == 1:
            self._pos[target] += count
        elif value == -1:
            self._neg[target] += count

    def reputation(self) -> np.ndarray:
        """The current summation vector (fresh copy)."""
        return (self._pos - self._neg).astype(float)

    def reputation_of(self, node: int) -> float:
        if not 0 <= node < self.n:
            raise UnknownNodeError(node, self.n)
        return float(self._pos[node] - self._neg[node])

    def merge(self, other: "SummationState") -> None:
        """Element-wise fold of another accumulator (shard -> global)."""
        if other.n != self.n:
            raise RatingError(
                f"cannot merge states of different universes ({other.n} != {self.n})"
            )
        self._pos += other._pos
        self._neg += other._neg

    def reset(self) -> None:
        self._pos[:] = 0
        self._neg[:] = 0

    # -- durability ----------------------------------------------------
    def export_state(self) -> Dict[str, List[int]]:
        """JSON-serializable totals (deterministic)."""
        return {
            "n": self.n,
            "pos": [int(v) for v in self._pos],
            "neg": [int(v) for v in self._neg],
        }

    @classmethod
    def from_state(cls, state: Dict[str, List[int]]) -> "SummationState":
        out = cls(int(state["n"]))
        pos = np.asarray(state["pos"], dtype=np.int64)
        neg = np.asarray(state["neg"], dtype=np.int64)
        if pos.shape != (out.n,) or neg.shape != (out.n,):
            raise RatingError("summation state arrays have wrong shape")
        out._pos[:] = pos
        out._neg[:] = neg
        return out

    def export_arrays(self) -> Dict[str, npt.NDArray[np.int64]]:
        """The totals as ``int64`` arrays — the binary-image counterpart
        of :meth:`export_state` (see ``service/snapshot.py``)."""
        return {"pos": self._pos.copy(), "neg": self._neg.copy()}

    @classmethod
    def from_arrays(cls, n: int, pos: npt.NDArray[np.int64],
                    neg: npt.NDArray[np.int64]) -> "SummationState":
        """Rebuild from (possibly read-only memory-mapped) arrays."""
        out = cls(n)
        if pos.shape != (n,) or neg.shape != (n,):
            raise RatingError("summation state arrays have wrong shape")
        out._pos[:] = pos
        out._neg[:] = neg
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SummationState(n={self.n}, mass={int(self._pos.sum() + self._neg.sum())})"
