"""The paper's weighted-feedback evaluation variant of EigenTrust.

Section V describes the baseline as ``R = sum_f w_f * r_f + sum_p w_s *
r_p`` where ``r_f`` are ratings from normal nodes (weight ``w_f = 0.2``)
and ``r_p`` ratings from pretrusted nodes (weight ``w_s = 0.5``), with
"a node with higher reputation [having] higher w_f".

This module implements that weighted sum directly.  ``recursive_passes``
controls the reputation-proportional re-weighting: with ``k >= 1``
passes, normal raters' weights are scaled by their (normalized)
reputation from the previous pass, which is the fixed-point-free
approximation of EigenTrust's recursion the paper's formula suggests.
The full power-iteration EigenTrust lives in
:mod:`repro.reputation.eigentrust`; the experiment harness uses that one
as the baseline (it reproduces the figure shapes without hand-tuned
weight scaling), keeping this class as the literal transcription.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.ratings.matrix import RatingMatrix
from repro.reputation.base import ReputationSystem
from repro.util.counters import OpCounter
from repro.util.validation import check_int_range, check_non_negative

__all__ = ["WeightedFeedbackReputation"]


class WeightedFeedbackReputation(ReputationSystem):
    """``R_i = sum_j w(j) * net_ratings(j -> i)`` with pretrust boosting.

    Parameters
    ----------
    pretrusted:
        Node ids whose ratings carry weight ``w_s`` instead of ``w_f``.
    w_f, w_s:
        Feedback weights for normal and pretrusted raters (paper uses
        0.2 / 0.5, "the honey spot parameters of the system").
    recursive_passes:
        Number of reputation-proportional re-weighting passes (0 =
        plain weighted sum).
    normalize:
        When true the result is shifted/scaled onto a probability
        simplex (non-negative, sums to 1) so values are comparable with
        EigenTrust's output in the figures.
    """

    name = "weighted-feedback"

    def __init__(
        self,
        pretrusted: Iterable[int] = (),
        w_f: float = 0.2,
        w_s: float = 0.5,
        recursive_passes: int = 0,
        normalize: bool = True,
        ops: Optional[OpCounter] = None,
    ):
        super().__init__(ops)
        check_non_negative("w_f", w_f)
        check_non_negative("w_s", w_s)
        check_int_range("recursive_passes", recursive_passes, 0)
        if w_s < w_f:
            raise ConfigurationError(
                f"pretrusted weight w_s ({w_s}) must be >= normal weight w_f ({w_f})"
            )
        self.pretrusted: FrozenSet[int] = frozenset(int(i) for i in pretrusted)
        for i in self.pretrusted:
            if i < 0:
                raise ConfigurationError(f"pretrusted ids must be non-negative, got {i}")
        self.w_f = float(w_f)
        self.w_s = float(w_s)
        self.recursive_passes = recursive_passes
        self.normalize = normalize

    def _weights(self, n: int) -> np.ndarray:
        if any(i >= n for i in self.pretrusted):
            raise ConfigurationError(
                f"pretrusted ids {sorted(self.pretrusted)} exceed universe size {n}"
            )
        w = np.full(n, self.w_f, dtype=float)
        if self.pretrusted:
            w[list(self.pretrusted)] = self.w_s
        return w

    def compute(self, matrix: RatingMatrix) -> np.ndarray:
        n = matrix.n
        net = np.zeros((n, n), dtype=float)  # [target, rater]
        targets, raters, counts, pos = matrix.entries(effective=True)
        net[targets, raters] = (2 * pos - counts).astype(float)
        w = self._weights(n)
        rep = net @ w
        self.ops.add("mac", n * n)
        for _ in range(self.recursive_passes):
            # Scale normal raters' weights by their normalized reputation
            # from the previous pass; pretrusted weights stay fixed.
            pos = np.clip(rep, 0.0, None)
            top = pos.max()
            scale = pos / top if top > 0 else np.zeros(n)
            w_pass = self.w_f * scale
            if self.pretrusted:
                w_pass[list(self.pretrusted)] = self.w_s
            rep = net @ w_pass
            self.ops.add("mac", n * n)
        if self.normalize:
            rep = np.clip(rep, 0.0, None)
            mass = rep.sum()
            if mass > 0:
                rep = rep / mass
            self.ops.add("normalize", n)
        return rep
