"""Centralized reputation manager (Amazon-style single authority).

The manager owns the rating ledger, periodically recomputes global
reputation values with a pluggable :class:`ReputationSystem`, and
exposes the count matrix that the collusion detectors consume
(Section IV-B: "the centralized reputation manager keeps track of the
frequency of ratings and frequency of positive ratings of every other
node to the node").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import SimulationError
from repro.ratings.ledger import RatingLedger
from repro.ratings.matrix import RatingMatrix
from repro.reputation.base import ReputationSystem
from repro.reputation.summation import SummationReputation
from repro.util.validation import check_int_range

__all__ = ["CentralizedReputationManager"]


class CentralizedReputationManager:
    """Single authority collecting all ratings and publishing reputations.

    Parameters
    ----------
    n:
        Universe size (node ids ``0 .. n-1``).
    system:
        Reputation system used for the published values; defaults to
        the eBay-style :class:`SummationReputation`.
    cumulative:
        When true (default) reputation is computed over the whole
        ledger; when false only over the current period's window —
        the paper's period ``T`` semantics.

    Notes
    -----
    :meth:`update` advances the period clock and recomputes the
    published vector; reads between updates return the last published
    values (exactly how Amazon's daily-batched reputation behaves).
    """

    def __init__(
        self,
        n: int,
        system: Optional[ReputationSystem] = None,
        cumulative: bool = True,
    ):
        check_int_range("n", n, 1)
        self.n = n
        self.system = system if system is not None else SummationReputation()
        self.cumulative = cumulative
        self.ledger = RatingLedger(n)
        self._published = np.zeros(n, dtype=float)
        self._period_start = 0.0
        self._last_update = 0.0
        self._overrides: dict = {}

    # ------------------------------------------------------------------
    # rating intake
    # ------------------------------------------------------------------
    def submit_rating(self, rater: int, target: int, value: int, time: float = 0.0) -> None:
        """Accept one rating (the paper's ``Insert(ID_i, r_i)``)."""
        self.ledger.add(rater, target, value, time)

    def replay(self, events) -> int:
        """Bulk-ingest an iterable of :class:`~repro.ratings.Rating` events.

        The offline counterpart of the detection service's WAL recovery:
        pipe :func:`repro.ratings.iter_jsonl` (or any Rating iterable)
        in to rebuild a manager from a durable trace, then call
        :meth:`update` to publish.  Returns the number of events
        ingested.
        """
        count = 0
        for event in events:
            self.ledger.add_rating(event)
            count += 1
        return count

    # ------------------------------------------------------------------
    # publication
    # ------------------------------------------------------------------
    def update(self, now: Optional[float] = None) -> np.ndarray:
        """Recompute and publish global reputations (period boundary).

        Parameters
        ----------
        now:
            End of the period; defaults to the latest ledger timestamp.
        """
        if now is None:
            now = float(self.ledger.times.max()) if len(self.ledger) else 0.0
        if now < self._last_update:
            raise SimulationError(
                f"update clock moved backwards: {now} < {self._last_update}"
            )
        matrix = self.current_matrix(now=now)
        self._published = self.system.compute(matrix)
        for node, value in self._overrides.items():
            self._published[node] = value
        if not self.cumulative:
            # Events stamped exactly at `now` belong to the period just
            # published; the next period starts strictly after it.
            self._period_start = float(np.nextafter(now, np.inf))
        self._last_update = now
        return self._published.copy()

    def current_matrix(self, now: Optional[float] = None) -> RatingMatrix:
        """The count matrix the detectors consume (window per config)."""
        if now is None:
            now = float(self.ledger.times.max()) if len(self.ledger) else 0.0
        t0 = -np.inf if self.cumulative else self._period_start
        return self.ledger.to_matrix(t0=t0, t1=np.nextafter(now, np.inf))

    def reputation_of(self, node: int) -> float:
        """Published reputation of ``node`` (the paper's ``Lookup(ID)``)."""
        if not 0 <= node < self.n:
            from repro.errors import UnknownNodeError

            raise UnknownNodeError(node, self.n)
        return float(self._published[node])

    @property
    def reputations(self) -> np.ndarray:
        """Copy of the last published reputation vector."""
        return self._published.copy()

    def high_reputed(self, threshold: float) -> np.ndarray:
        """Ids of nodes whose published reputation is ``>= threshold``."""
        return np.flatnonzero(self._published >= threshold)

    # ------------------------------------------------------------------
    # detection hooks
    # ------------------------------------------------------------------
    def override_reputation(self, node: int, value: float) -> None:
        """Pin a node's published reputation (detected colluders -> 0).

        The override persists across subsequent :meth:`update` calls —
        the paper's response to detection is "set their reputations to
        0", which must survive recomputation or the colluders would
        simply re-earn their score next period.
        """
        if not 0 <= node < self.n:
            from repro.errors import UnknownNodeError

            raise UnknownNodeError(node, self.n)
        self._overrides[node] = float(value)
        self._published[node] = float(value)

    def clear_overrides(self) -> None:
        """Remove all reputation pins (used between experiments)."""
        self._overrides.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CentralizedReputationManager(n={self.n}, system={self.system.name!r}, "
            f"events={len(self.ledger)})"
        )
