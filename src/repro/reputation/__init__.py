"""Reputation systems: summation, positive-fraction, EigenTrust, weighted.

Every system consumes a :class:`repro.ratings.RatingMatrix` (the counts a
reputation manager collects during period ``T``) and produces a vector of
global reputation values.  ``EigenTrust`` is the paper's baseline /
host system; ``SummationReputation`` is the eBay-style local model the
paper's Formula (1) is derived for.
"""

from repro.reputation.base import ReputationSystem
from repro.reputation.summation import SummationReputation, SummationState
from repro.reputation.fading import FadingMemoryReputation
from repro.reputation.fraction import PositiveFractionReputation
from repro.reputation.eigentrust import EigenTrust, EigenTrustConfig
from repro.reputation.weighted import WeightedFeedbackReputation
from repro.reputation.manager import CentralizedReputationManager
from repro.reputation.decentralized import DecentralizedReputationSystem, ReputationShard
from repro.reputation.distributed_eigentrust import (
    DistributedEigenTrust,
    DistributedTrustResult,
)

__all__ = [
    "ReputationSystem",
    "SummationReputation",
    "SummationState",
    "PositiveFractionReputation",
    "FadingMemoryReputation",
    "EigenTrust",
    "EigenTrustConfig",
    "WeightedFeedbackReputation",
    "CentralizedReputationManager",
    "DecentralizedReputationSystem",
    "ReputationShard",
    "DistributedEigenTrust",
    "DistributedTrustResult",
]
