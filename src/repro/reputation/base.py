"""Abstract interface every reputation system implements."""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.ratings.matrix import RatingMatrix
from repro.util.counters import OpCounter

__all__ = ["ReputationSystem"]


class ReputationSystem(abc.ABC):
    """Computes a global reputation vector from collected rating counts.

    Implementations must be *pure* with respect to the matrix: calling
    :meth:`compute` twice on the same counts yields the same vector.
    Iterative systems (EigenTrust) may carry configuration but not
    hidden mutable state that alters results.

    An optional :class:`OpCounter` accounts the system's unit
    operations, feeding the paper's Figure 13 cost comparison.
    """

    #: Human-readable system name used in reports.
    name: str = "abstract"

    #: When true, callers must feed per-period matrices (the system
    #: carries its own history across calls — e.g. fading memory);
    #: when false (default) cumulative matrices are expected.
    wants_period_matrix: bool = False

    def __init__(self, ops: Optional[OpCounter] = None):
        self.ops = ops if ops is not None else OpCounter()

    @abc.abstractmethod
    def compute(self, matrix: RatingMatrix) -> np.ndarray:
        """Return the global reputation value of every node.

        Parameters
        ----------
        matrix:
            Rating counts collected during the current period ``T``
            (or cumulatively — the caller chooses the window).

        Returns
        -------
        numpy.ndarray
            Float vector of length ``matrix.n``.
        """

    def trustworthy(self, matrix: RatingMatrix, threshold: float) -> np.ndarray:
        """Boolean mask of nodes with reputation ``>= threshold``.

        The paper: "Nodes whose R >= T_R are considered as trustworthy".
        """
        return self.compute(matrix) >= threshold

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
