"""Decentralized reputation management over a Chord DHT.

"Decentralized reputation systems distribute the role of the
centralized resource manager to a number of trustworthy nodes …  The
reputation manager of reputation ratings on node ``n_i`` is the DHT
owner of ``ID_i``" (paper Section IV-A / Figure 2).

:class:`DecentralizedReputationSystem` hashes every content node's id
onto the ring; the manager owning that point keeps a
:class:`ReputationShard` with all ratings *about* its responsible
nodes.  Ratings are routed with the paper's ``Insert(ID_i, r_i)`` and
reputation reads with ``Lookup(ID_i)``, both counted on the shared
:class:`MessageCounter`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

import numpy as np

from repro.dht.hashing import IdSpace
from repro.dht.ring import ChordRing
from repro.errors import ConfigurationError, UnknownNodeError
from repro.ratings.ledger import RatingLedger
from repro.ratings.matrix import RatingMatrix
from repro.reputation.base import ReputationSystem
from repro.reputation.summation import SummationReputation
from repro.util.counters import MessageCounter
from repro.util.validation import check_int_range

__all__ = ["ReputationShard", "DecentralizedReputationSystem"]


class ReputationShard:
    """One reputation manager's slice of the global rating state.

    The shard keeps a full-universe ledger but only ever receives
    events whose *target* it is responsible for, so its count matrix
    has non-zero rows only at responsible nodes.  This keeps all the
    vectorized aggregate code identical to the centralized path.
    """

    def __init__(self, manager_id: int, n: int, responsible: Iterable[int]):
        self.manager_id = manager_id
        self.n = n
        self.responsible = frozenset(int(i) for i in responsible)
        self.ledger = RatingLedger(n)
        self.published: Dict[int, float] = {i: 0.0 for i in self.responsible}

    def accept(self, rater: int, target: int, value: int, time: float = 0.0) -> None:
        """Store one rating about a responsible node."""
        if target not in self.responsible:
            raise UnknownNodeError(target, self.n)
        self.ledger.add(rater, target, value, time)

    def matrix(self) -> RatingMatrix:
        """Count matrix over this shard's events."""
        return self.ledger.to_matrix()

    def compute(self, system: ReputationSystem) -> Dict[int, float]:
        """Recompute published reputations for responsible nodes."""
        rep = system.compute(self.matrix())
        for i in self.responsible:
            self.published[i] = float(rep[i])
        return dict(self.published)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReputationShard(manager={self.manager_id}, "
            f"responsible={len(self.responsible)}, events={len(self.ledger)})"
        )


class DecentralizedReputationSystem:
    """A set of reputation managers sharding the universe over Chord.

    Parameters
    ----------
    n:
        Number of content nodes (ids ``0 .. n-1``).
    manager_addresses:
        Addresses (hashed onto the ring) of the power nodes acting as
        reputation managers; must be non-empty.
    system:
        Reputation system each shard runs; defaults to summation.
    space:
        Chord identifier space (32-bit default).

    Notes
    -----
    The assignment of node ``i`` to its manager uses
    ``ring.owner(hash(i))`` — identical to the paper's "the DHT owner of
    ``ID_i``".  All reads/writes route through the ring so that message
    and hop counts reflect a real deployment.
    """

    def __init__(
        self,
        n: int,
        manager_addresses: Iterable[Union[int, str]],
        system: Optional[ReputationSystem] = None,
        space: Optional[IdSpace] = None,
        messages: Optional[MessageCounter] = None,
    ):
        check_int_range("n", n, 1)
        self.n = n
        self.system = system if system is not None else SummationReputation()
        self.messages = messages if messages is not None else MessageCounter()
        self.ring = ChordRing(space if space is not None else IdSpace(32), self.messages)
        addresses = list(manager_addresses)
        if not addresses:
            raise ConfigurationError("at least one manager address is required")
        for addr in addresses:
            self.ring.add_node(addr)

        # node id -> ring key, node id -> manager ring id
        self._node_key: List[int] = [self.ring.space.hash(i) for i in range(n)]
        self._manager_of: List[int] = [self.ring.owner(k) for k in self._node_key]

        self.shards: Dict[int, ReputationShard] = {}
        for mid in self.ring.node_ids:
            responsible = [i for i in range(n) if self._manager_of[i] == mid]
            self.shards[mid] = ReputationShard(mid, n, responsible)

    # ------------------------------------------------------------------
    # addressing
    # ------------------------------------------------------------------
    def manager_of(self, node: int) -> int:
        """Ring id of the reputation manager responsible for ``node``."""
        if not 0 <= node < self.n:
            raise UnknownNodeError(node, self.n)
        return self._manager_of[node]

    def shard_of(self, node: int) -> ReputationShard:
        """The shard holding ``node``'s ratings."""
        return self.shards[self.manager_of(node)]

    # ------------------------------------------------------------------
    # the paper's Insert / Lookup
    # ------------------------------------------------------------------
    def submit_rating(self, rater: int, target: int, value: int,
                      time: float = 0.0) -> None:
        """``Insert(ID_target, rating)`` — route the rating to its manager."""
        if not 0 <= target < self.n:
            raise UnknownNodeError(target, self.n)
        key = self._node_key[target]
        owner_id, hops = self.ring.find_successor(key)
        self.messages.record("insert_rating", rater, owner_id, hops)
        self.shards[owner_id].accept(rater, target, value, time)

    def update(self) -> None:
        """Every manager recomputes its responsible nodes' reputations."""
        for shard in self.shards.values():
            shard.compute(self.system)

    def reputation_of(self, node: int, querier: Optional[int] = None) -> float:
        """``Lookup(ID_node)`` — fetch the published reputation via the ring."""
        if not 0 <= node < self.n:
            raise UnknownNodeError(node, self.n)
        key = self._node_key[node]
        owner_id, hops = self.ring.find_successor(key)
        self.messages.record("lookup_reputation", querier if querier is not None else -1,
                             owner_id, hops)
        return self.shards[owner_id].published[node]

    # ------------------------------------------------------------------
    # manager churn
    # ------------------------------------------------------------------
    def _migrate_node(self, node: int, source: ReputationShard,
                      destination: ReputationShard) -> None:
        """Move one node's ratings and published value between shards."""
        ledger = source.ledger
        mask = ledger.targets == node
        if mask.any():
            destination.ledger.extend(
                ledger.raters[mask],
                ledger.targets[mask],
                ledger.values[mask].astype(np.int64),
                ledger.times[mask],
            )
        destination.published[node] = source.published.get(node, 0.0)

    def _reshard(self) -> None:
        """Recompute node->manager ownership and migrate moved state.

        Called after ring membership changes.  Ratings held for a node
        whose owner changed are replayed into the new owner's ledger;
        the old shard objects are rebuilt so stale rows never linger.
        """
        new_manager_of = [self.ring.owner(k) for k in self._node_key]
        new_shards: Dict[int, ReputationShard] = {}
        for mid in self.ring.node_ids:
            responsible = [i for i in range(self.n) if new_manager_of[i] == mid]
            new_shards[mid] = ReputationShard(mid, self.n, responsible)
        for node in range(self.n):
            old_mid = self._manager_of[node]
            source = self.shards.get(old_mid)
            if source is None:
                continue
            self._migrate_node(node, source, new_shards[new_manager_of[node]])
        self._manager_of = new_manager_of
        self.shards = new_shards

    def add_manager(self, address: Union[int, str]) -> int:
        """A new power node joins the manager ring; returns its ring id.

        Nodes whose hashed id now falls in the newcomer's arc migrate —
        ratings and published values move with them (counted as local
        state transfer, not routed messages, matching Chord's bulk key
        hand-off on join).
        """
        node = self.ring.add_node(address)
        self._reshard()
        return node.node_id

    def remove_manager(self, manager_id: int) -> None:
        """A manager leaves; its responsibilities fold into successors.

        Raises
        ------
        ConfigurationError
            If this is the last manager (the system would lose all
            state with no successor to absorb it).
        """
        if len(self.shards) <= 1:
            raise ConfigurationError("cannot remove the last reputation manager")
        if manager_id not in self.shards:
            from repro.errors import DHTError

            raise DHTError(f"no manager with ring id {manager_id}")
        self.ring.leave(manager_id)
        self._reshard()

    # ------------------------------------------------------------------
    # global views (for tests / detector integration)
    # ------------------------------------------------------------------
    def global_matrix(self) -> RatingMatrix:
        """Union of all shard matrices — must equal the centralized view."""
        out = RatingMatrix(self.n)
        for shard in self.shards.values():
            ledger = shard.ledger
            if len(ledger):
                out.add_events(ledger.raters, ledger.targets,
                               ledger.values.astype(np.int64))
        return out

    def published_vector(self) -> np.ndarray:
        """All published reputations as one vector (no routing cost)."""
        rep = np.zeros(self.n, dtype=float)
        for shard in self.shards.values():
            for node, value in shard.published.items():
                rep[node] = value
        return rep

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DecentralizedReputationSystem(n={self.n}, "
            f"managers={len(self.shards)}, system={self.system.name!r})"
        )
