"""Shard worker: one thread owning one partition's detection state.

The rating stream is partitioned by ``target % num_shards``.  Every
counter the detection algorithm reads for a target — per-pair
frequencies, per-node totals, the hot set, cumulative summation
reputation — is keyed by the *target*, so a target-partitioned shard
can ingest and screen its share with no cross-shard synchronization at
all.  Only the period boundary needs coordination (the global
reputation gate and the symmetric-pair join), and that is the
coordinator's job.

Concurrency model: **state is confined to the worker thread.**  The
coordinator communicates through the shard's bounded queue only —
rating batches for the data plane, :class:`_Command` thunks for the
control plane.  Commands queue behind previously accepted batches, so
"run this command" doubles as a barrier ("… after everything submitted
so far is applied").  No locks guard the detector; none are needed.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, cast

from repro.core.online import OnlineCollusionDetector
from repro.errors import BackpressureError, ServiceError
from repro.ratings.events import Rating
from repro.reputation.summation import SummationState
from repro.service.config import ServiceConfig

__all__ = ["ShardWorker"]

_STOP = object()


class _Command:
    """A thunk executed on the worker thread, with completion signal."""

    __slots__ = ("fn", "done", "result", "error")

    def __init__(self, fn: Callable[["ShardWorker"], Any]) -> None:
        self.fn = fn
        self.done = threading.Event()
        self.result: Any = None
        self.error: Optional[BaseException] = None


class ShardWorker:
    """One partition's ingestion queue, detector and reputation state."""

    def __init__(self, shard_id: int, config: ServiceConfig) -> None:
        self.shard_id = shard_id
        self.config = config
        self.detector = OnlineCollusionDetector(
            config.n,
            thresholds=config.thresholds,
            multi_booster_exclusion=config.multi_booster_exclusion,
        )
        self.cumulative = SummationState(config.n)
        self.queue: "queue.Queue[Any]" = queue.Queue(maxsize=config.queue_capacity)
        self._thread: Optional[threading.Thread] = None
        self._failure: Optional[BaseException] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        if self.running:
            return
        self._thread = threading.Thread(
            target=self._run, name=f"repro-shard-{self.shard_id}", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop after draining everything already queued."""
        if not self.running:
            return
        self.queue.put(_STOP)
        self._thread.join()
        self._thread = None

    def _run(self) -> None:
        while True:
            item = self.queue.get()
            if item is _STOP:
                return
            if isinstance(item, _Command):
                try:
                    item.result = item.fn(self)
                except BaseException as exc:  # surface to the caller
                    item.error = exc
                finally:
                    item.done.set()
                continue
            try:
                self.apply(item)
            except Exception as exc:
                # Batches are fully validated before enqueue, so this is
                # a bug; fail loudly on every later interaction rather
                # than continuing with corrupt counters.
                self._failure = exc
                self._fail_pending()
                return

    def _fail_pending(self) -> None:
        while True:
            try:
                item = self.queue.get_nowait()
            except queue.Empty:
                return
            if isinstance(item, _Command):
                item.error = ServiceError(
                    f"shard {self.shard_id} worker crashed: {self._failure}"
                )
                item.done.set()

    def _check_healthy(self) -> None:
        if self._failure is not None:
            raise ServiceError(
                f"shard {self.shard_id} worker crashed: {self._failure}"
            ) from self._failure

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------
    def has_capacity(self) -> bool:
        """Room for one more batch?  Only meaningful under the ingest
        lock (workers only *remove* items, so a yes cannot turn stale)."""
        return not self.queue.full()

    def enqueue(self, batch: Sequence[Rating]) -> None:
        """Queue a batch; explicit :class:`BackpressureError` when full."""
        self._check_healthy()
        try:
            self.queue.put_nowait(list(batch))
        except queue.Full:
            raise BackpressureError(self.shard_id, self.config.queue_capacity) from None

    def apply(self, batch: Sequence[Rating]) -> None:
        """Fold a batch into the detector + cumulative state.

        Called on the worker thread during normal operation, and
        directly (no thread) during WAL replay — both paths are the
        same code, which is what makes recovery provably equivalent.
        """
        observe = self.detector.observe
        cumulative_observe = self.cumulative.observe
        for event in batch:
            observe(event.rater, event.target, event.value)
            cumulative_observe(event.target, event.value)

    # ------------------------------------------------------------------
    # control plane
    # ------------------------------------------------------------------
    def call(self, fn: Callable[["ShardWorker"], Any]) -> Any:
        """Run ``fn(shard)`` after all currently queued batches.

        On the worker thread when running (a barrier + safe state
        access); inline when stopped (recovery / offline tooling).
        """
        self._check_healthy()
        if not self.running:
            return fn(self)
        command = _Command(fn)
        self.queue.put(command)  # blocking: control must not be dropped
        command.done.wait()
        if command.error is not None:
            raise command.error
        return command.result

    def drain(self) -> None:
        """Block until every batch queued so far has been applied."""
        self.call(lambda _shard: None)

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    def export_state(self) -> Dict[str, object]:
        """JSON-serializable shard state (call via :meth:`call`)."""
        return {
            "shard_id": self.shard_id,
            "detector": self.detector.export_state(),
            "cumulative": self.cumulative.export_state(),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        if state.get("shard_id") != self.shard_id:
            raise ServiceError(
                f"snapshot shard id {state.get('shard_id')!r} != worker id "
                f"{self.shard_id}"
            )
        self.detector.restore_state(cast(Dict[str, object], state["detector"]))
        self.cumulative = SummationState.from_state(
            cast(Dict[str, List[int]], state["cumulative"])
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardWorker(id={self.shard_id}, queued={self.queue.qsize()}, "
            f"events={self.detector.events_this_period})"
        )
