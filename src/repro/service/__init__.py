"""`repro.service` — sharded online collusion-detection service.

The deployable host for the streaming detector: rating traffic is
partitioned by target id across shard workers — in-process threads
(:mod:`~repro.service.shard`, hosted by
:class:`~repro.service.coordinator.DetectionService`) or one OS
process per shard (:mod:`~repro.service.worker`, hosted by
:class:`~repro.service.process.ProcessDetectionService`).  Every
accepted batch is write-ahead logged (:mod:`~repro.service.wal` —
one shared WAL in thread mode, one per worker in process mode),
periodic snapshots bound recovery to a WAL-tail replay
(:mod:`~repro.service.snapshot`), period closes merge per-shard
screens into epoch verdicts, and a stdlib HTTP API serves queries for
either mode (:mod:`~repro.service.http_api`).

Guarantee: for any accepted event sequence, the merged per-epoch
verdicts equal :class:`repro.core.optimized.OptimizedCollusionDetector`
run on the epoch's full rating matrix — including across a crash and
recovery, in both execution modes.  See ``docs/SERVICE.md`` for the
architecture and the durability contract, and ``docs/OPERATIONS.md``
for deployment and capacity planning.

Quickstart
----------
>>> from repro.service import DetectionService, ServiceConfig
>>> service = DetectionService(ServiceConfig(n=50, num_shards=2)).start()
>>> service.submit_one(3, 7, 1)
>>> report = service.end_period().report
>>> service.stop()
"""

from repro.service.config import ServiceConfig
from repro.service.coordinator import DetectionService, EpochResult
from repro.service.http_api import ServiceHTTPServer
from repro.service.metrics import LatencyHistogram, ServiceMetrics
from repro.service.process import ProcessDetectionService
from repro.service.shard import ShardWorker
from repro.service.snapshot import SnapshotStore
from repro.service.wal import WriteAheadLog
from repro.service.worker import ProcessShardWorker

__all__ = [
    "ServiceConfig",
    "DetectionService",
    "ProcessDetectionService",
    "EpochResult",
    "ServiceHTTPServer",
    "ServiceMetrics",
    "LatencyHistogram",
    "ShardWorker",
    "ProcessShardWorker",
    "SnapshotStore",
    "WriteAheadLog",
]
