"""Process shard worker: one OS process owning one partition's state.

The process-per-shard service (:mod:`repro.service.process`) replaces
the GIL-bound thread workers with real processes.  The division of
labour mirrors :mod:`repro.service.shard` exactly — the stream is still
partitioned by ``target % num_shards``, so each worker screens its own
targets with zero cross-worker synchronization — but state now lives in
a child process and the control plane crosses a pipe:

* **Data plane** — the parent enqueues rating batches (as plain tuples,
  cheap to pickle) on a bounded ``multiprocessing.Queue``.  A full
  queue is explicit backpressure, surfaced to HTTP as ``429`` +
  ``Retry-After``.  In durable mode the child appends each batch to its
  *own* WAL segment before acknowledging, so a batch the parent has
  acknowledged survives any crash of either side.
* **Control plane** — commands travel on the same queue and are
  therefore barriers: a command's reply proves every batch enqueued
  before it has been applied (the same FIFO trick the thread worker
  plays with its ``_Command`` thunks).  Thunks do not pickle, so the
  protocol is a fixed named-command vocabulary (``reputation``,
  ``candidates``, ``advance``, ``snapshot``, …) dispatched by
  :class:`_WorkerState`.
* **Durability** — each worker owns a full WAL + snapshot tree under
  ``data_dir/shard-NN/`` (the same :class:`WriteAheadLog` /
  :class:`SnapshotStore` machinery the single-process service uses) and
  performs its *own* recovery on startup: load the latest snapshot,
  replay the current epoch's WAL tail through the same ``apply()`` code
  path, then catch up to the coordinator's committed epoch
  (``meta.json``) if a crash interrupted a period close after the
  commit point.  Restart-from-WAL is therefore a plain respawn.

The parent-side handle (:class:`ProcessShardWorker`) is *not*
thread-safe on its own — the service serializes every interaction under
its ingest lock, exactly as it does for thread shards.
"""

from __future__ import annotations

import multiprocessing
import os
import pathlib
import queue as queue_module
import time
from multiprocessing.connection import Connection
from typing import Any, Dict, List, Optional, Tuple, cast

import numpy as np

from repro.core.model import HalfVerdict
from repro.errors import (
    BackpressureError,
    RecoveryError,
    ServiceError,
    WorkerCrashError,
)
from repro.ratings.events import Rating
from repro.reputation.summation import SummationState
from repro.service.config import ServiceConfig
from repro.service.shard import ShardWorker
from repro.service.snapshot import SnapshotStore, StateImageStore
from repro.service.wal import WriteAheadLog

__all__ = ["ProcessShardWorker", "shard_data_dir"]

#: One rating event on the wire: ``(rater, target, value, time)``.
EventTuple = Tuple[int, int, int, float]

#: ``fork`` keeps worker startup at milliseconds (no numpy re-import).
#: It is only safe because the service forks the initial workers before
#: any other thread exists (``start()`` runs before the HTTP server's
#: handler threads); platforms without it fall back to ``spawn``.
_START_METHOD = (
    "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
)

#: Runtime *restarts* happen from a multithreaded parent (HTTP handler
#: threads), where ``fork`` can deadlock the child on a lock some other
#: thread held at fork time and leaks the siblings' queue/pipe FDs into
#: it.  ``forkserver`` forks from a dedicated single-threaded server
#: process (itself launched via exec, which is thread-safe) and only
#: passes the new worker's own handles; ``spawn`` is the portable
#: fallback.  Both only cost extra milliseconds, and only at restart.
_RESTART_METHOD = next(
    method for method in ("forkserver", "spawn", "fork")
    if method in multiprocessing.get_all_start_methods()
)


def shard_data_dir(data_dir: pathlib.Path, shard_id: int) -> pathlib.Path:
    """Per-worker durability root: ``<data_dir>/shard-NN``."""
    return data_dir / f"shard-{shard_id:02d}"


def _thresholds_signature(config: ServiceConfig) -> List[object]:
    th = config.thresholds
    return [th.t_r, th.t_a, th.t_b, th.t_n, config.multi_booster_exclusion]


# ----------------------------------------------------------------------
# child side
# ----------------------------------------------------------------------
class _WorkerState:
    """Everything the child process owns: detector, WAL, snapshots.

    Runs single-threaded inside the worker process; reuses
    :class:`ShardWorker` purely as the (never-started) state container
    so live ingest, WAL replay and the thread service all share one
    ``apply()`` code path.
    """

    def __init__(self, shard_id: int, config: ServiceConfig,
                 meta_epoch: int) -> None:
        self.shard_id = shard_id
        self.config = config
        self.meta_epoch = meta_epoch
        self.shard = ShardWorker(shard_id, config)
        self.epoch = 0
        self.epoch_events = 0
        self.total_events = 0
        self.replayed = 0
        self.restart_ms = 0.0
        self.wal: Optional[WriteAheadLog] = None
        self.snapshots: Optional[SnapshotStore] = None
        self.images: Optional[StateImageStore] = None
        if config.durable:
            base = shard_data_dir(
                pathlib.Path(cast(pathlib.Path, config.data_dir)), shard_id
            )
            self.wal = WriteAheadLog(base / "wal", fsync=config.fsync)
            self.snapshots = SnapshotStore(
                base / "snapshots", keep=config.keep_snapshots
            )
            if config.matrix_backend == "mmap":
                # mmap mode swaps the JSON state document for a binary
                # image: snapshots publish int64 segments, recovery maps
                # them back without parsing (see StateImageStore).
                self.images = StateImageStore(
                    base / "images", keep=config.keep_snapshots
                )

    # -- recovery ------------------------------------------------------
    def recover(self) -> None:
        """Snapshot + WAL-tail recovery, then coordinator catch-up.

        The wall-clock cost of the whole sequence is recorded as
        ``restart_ms`` and surfaced through ``status()`` — the number
        the mmap backend exists to shrink.
        """
        started = time.perf_counter()
        try:
            self._recover()
        finally:
            self.restart_ms = (time.perf_counter() - started) * 1000.0

    def _check_compat(self, state: Dict[str, object], what: str) -> None:
        """Reject persisted state from an incompatible configuration."""
        if state.get("n") != self.config.n:
            raise RecoveryError(
                f"shard {self.shard_id} {what} universe n={state['n']} "
                f"!= configured n={self.config.n}"
            )
        if state.get("num_shards") != self.config.num_shards:
            raise RecoveryError(
                f"shard {self.shard_id} {what} has "
                f"{state['num_shards']} shards, configured "
                f"{self.config.num_shards} — repartitioning requires an "
                f"offline replay, not a restart"
            )
        if state.get("thresholds") != _thresholds_signature(self.config):
            raise RecoveryError(
                f"shard {self.shard_id} {what} thresholds "
                f"{state['thresholds']} != configured "
                f"{_thresholds_signature(self.config)}"
            )

    def _recover(self) -> None:
        if self.wal is None or self.snapshots is None:
            # Nothing durable to recover: an ephemeral (re)start joins
            # the coordinator's current epoch with empty counters.
            self.epoch = self.meta_epoch
            return
        restored = False
        if self.images is not None:
            image = self.images.load_latest()
            if image is not None:
                arrays, meta, mapping = image
                self._check_compat(meta, "image")
                if meta.get("shard_id") != self.shard_id:
                    raise RecoveryError(
                        f"shard {self.shard_id} found an image for shard "
                        f"{meta.get('shard_id')!r} in its data dir"
                    )
                self.epoch = self._snapshot_int(meta, "epoch")
                self.epoch_events = self._snapshot_int(meta, "wal_applied")
                self.total_events = self._snapshot_int(meta, "total_events")
                self.shard.detector.restore_arrays(
                    arrays, self._snapshot_int(meta, "events")
                )
                self.shard.cumulative = SummationState.from_arrays(
                    self.config.n, arrays["cum_pos"], arrays["cum_neg"]
                )
                # Restore copies everything it keeps, so the mapping can
                # be released immediately.
                del arrays
                try:
                    mapping.close()
                except BufferError:  # pragma: no cover - defensive
                    pass
                restored = True
        if not restored:
            # JSON path: either the configured mode, or the migration
            # fallback when mmap mode starts over a JSON-era data dir.
            state = self.snapshots.load_latest()
            if state is not None:
                self._check_compat(state, "snapshot")
                self.epoch = self._snapshot_int(state, "epoch")
                self.epoch_events = self._snapshot_int(state, "wal_applied")
                self.total_events = self._snapshot_int(state, "total_events")
                self.shard.restore_state(
                    cast(Dict[str, object], state["shard"])
                )
        # Replay the current epoch's WAL tail through apply() — the
        # same code path as live ingestion.
        replayed = 0
        for rating in self.wal.replay(
            self.epoch, skip=self.epoch_events, n=self.config.n
        ):
            self.shard.apply([rating])
            replayed += 1
        self.epoch_events += replayed
        self.total_events += replayed
        self.replayed = replayed
        # Catch up to a period close that committed (meta.json written)
        # before this worker advanced: the close's verdicts are already
        # published, so the idempotent remainder is reset + snapshot +
        # rotate.  A worker can be at most one epoch behind — ingest
        # never resumes until every worker has advanced.
        if self.epoch > self.meta_epoch:
            raise RecoveryError(
                f"shard {self.shard_id} is at epoch {self.epoch}, ahead of "
                f"the coordinator's committed epoch {self.meta_epoch} — "
                f"the data dir is inconsistent"
            )
        while self.epoch < self.meta_epoch:
            self.advance(self.epoch + 1)
        self.wal.open_epoch(self.epoch)
        self.snapshot()

    @staticmethod
    def _snapshot_int(state: Dict[str, object], key: str) -> int:
        value = state.get(key)
        if isinstance(value, bool) or not isinstance(value, int):
            raise RecoveryError(
                f"snapshot field {key!r} must be an integer, got {value!r}"
            )
        return value

    # -- data plane ----------------------------------------------------
    def apply_events(self, events: List[EventTuple]) -> None:
        """WAL-append (durable) then fold a batch into the counters."""
        if self.wal is not None:
            ratings = [
                Rating(rater, target, value, time=when)
                for rater, target, value, when in events
            ]
            self.wal.append(ratings)
            self.shard.apply(ratings)
        else:
            observe = self.shard.detector.observe
            cumulative_observe = self.shard.cumulative.observe
            for rater, target, value, _when in events:
                observe(rater, target, value)
                cumulative_observe(target, value)
        self.epoch_events += len(events)
        self.total_events += len(events)

    # -- control plane -------------------------------------------------
    def status(self) -> Dict[str, object]:
        return {
            "shard_id": self.shard_id,
            "pid": os.getpid(),
            "epoch": self.epoch,
            "epoch_events": self.epoch_events,
            "total_events": self.total_events,
            "replayed": self.replayed,
            "restart_ms": round(self.restart_ms, 3),
        }

    def reputation(self) -> "np.ndarray":
        return self.shard.detector.period_reputation()

    def candidates(
        self, gate: "np.ndarray"
    ) -> Tuple[List[HalfVerdict], Dict[str, int]]:
        before = self.shard.detector.ops.snapshot()
        found = self.shard.detector.period_candidates(reputation=gate)
        return found, self.shard.detector.ops.diff(before)

    def graph_export(
        self, gate: "np.ndarray"
    ) -> Tuple[List[HalfVerdict], List[Tuple[int, int, int, int]],
               "np.ndarray", "np.ndarray"]:
        return (
            self.shard.detector.period_candidates(reputation=gate),
            self.shard.detector.pair_counts(),
            *self.shard.detector.node_counters(),
        )

    def cumulative(self) -> "np.ndarray":
        return self.shard.cumulative.reputation()

    def cumulative_of(self, node: int) -> float:
        return float(self.shard.cumulative.reputation_of(node))

    def ops_snapshot(self) -> Dict[str, int]:
        return self.shard.detector.ops.snapshot()

    def export(self) -> Dict[str, object]:
        return self.shard.export_state()

    def advance(self, new_epoch: int) -> Dict[str, object]:
        """Period-close epilogue: reset, snapshot the new epoch, rotate.

        Idempotent at the target epoch: a worker that crashed after the
        coordinator's meta commit re-runs this epilogue during its own
        recovery, so the coordinator's subsequent ``advance`` finds it
        already there and must be a no-op, not an error.
        """
        if new_epoch == self.epoch:
            return self.status()
        if new_epoch != self.epoch + 1:
            raise ServiceError(
                f"shard {self.shard_id} asked to advance from epoch "
                f"{self.epoch} to {new_epoch} (must be consecutive)"
            )
        self.shard.detector.reset_period()
        self.epoch = new_epoch
        self.epoch_events = 0
        if self.wal is not None:
            self.snapshot()
            self.wal.rotate(self.epoch)
        return self.status()

    def snapshot(self) -> None:
        if self.snapshots is None:
            raise ServiceError("snapshots need a data_dir (durable mode)")
        if self.images is not None:
            detector = self.shard.detector
            arrays = detector.export_arrays()
            cumulative = self.shard.cumulative.export_arrays()
            arrays["cum_pos"] = cumulative["pos"]
            arrays["cum_neg"] = cumulative["neg"]
            self.images.save(arrays, {
                "kind": "shard-state",
                "shard_id": self.shard_id,
                "epoch": self.epoch,
                "wal_applied": self.epoch_events,
                "total_events": self.total_events,
                "events": detector.events_this_period,
                "n": self.config.n,
                "num_shards": self.config.num_shards,
                "thresholds": _thresholds_signature(self.config),
            })
            return
        self.snapshots.save({
            "epoch": self.epoch,
            "wal_applied": self.epoch_events,
            "total_events": self.total_events,
            "n": self.config.n,
            "num_shards": self.config.num_shards,
            "thresholds": _thresholds_signature(self.config),
            "shard": self.shard.export_state(),
        })

    def close(self) -> None:
        if self.wal is not None:
            self.wal.close()

    def dispatch(self, name: str, args: Tuple[Any, ...]) -> Any:
        handler = {
            "barrier": lambda: None,
            "status": self.status,
            "reputation": self.reputation,
            "candidates": self.candidates,
            "graph": self.graph_export,
            "cumulative": self.cumulative,
            "cumulative_of": self.cumulative_of,
            "ops": self.ops_snapshot,
            "export": self.export,
            "advance": self.advance,
            "snapshot": self.snapshot,
        }.get(name)
        if handler is None:
            raise ServiceError(f"unknown worker command {name!r}")
        return handler(*args)


def _worker_main(shard_id: int, config: ServiceConfig, meta_epoch: int,
                 commands: "multiprocessing.Queue[Any]",
                 replies: Connection) -> None:
    """Child entrypoint: recover, then serve the command loop forever."""
    try:
        state = _WorkerState(shard_id, config, meta_epoch)
        state.recover()
    except BaseException as exc:  # surfaced to the parent, then exit
        replies.send(("fatal", f"{type(exc).__name__}: {exc}"))
        return
    replies.send(("ready", state.status()))
    while True:
        message = commands.get()
        kind = message[0]
        if kind == "apply":
            _, events, want_ack = message
            state.apply_events(events)
            if want_ack:
                replies.send(("ack", len(events)))
        elif kind == "call":
            _, seq, name, args = message
            if name == "stop":
                state.close()
                replies.send(("result", seq, state.status()))
                return
            try:
                result = state.dispatch(name, args)
            except BaseException as exc:
                replies.send(
                    ("error", seq, f"{type(exc).__name__}: {exc}")
                )
            else:
                replies.send(("result", seq, result))


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
class ProcessShardWorker:
    """Parent-side handle on one shard worker process.

    Owns the bounded command queue (data + control, so control messages
    double as barriers), the reply pipe, and crash detection.  All
    interaction is serialized by the service's ingest lock; nothing
    here takes its own lock.
    """

    def __init__(self, shard_id: int, config: ServiceConfig,
                 meta_epoch: int = 0,
                 context: Optional[multiprocessing.context.BaseContext] = None,
                 ) -> None:
        self.shard_id = shard_id
        self.config = config
        ctx = context if context is not None \
            else multiprocessing.get_context(_START_METHOD)
        self.queue: "multiprocessing.Queue[Any]" = ctx.Queue(
            maxsize=config.queue_capacity
        )
        self._recv, self._send = ctx.Pipe(duplex=False)
        self.process = ctx.Process(
            target=_worker_main,
            args=(shard_id, config, meta_epoch, self.queue, self._send),
            name=f"repro-shard-{shard_id}",
            daemon=True,
        )
        self.process.start()
        self._seq = 0
        self._acks_pending = 0
        self.ready_status = self._wait_ready()

    # -- lifecycle -----------------------------------------------------
    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    def _wait_ready(self) -> Dict[str, object]:
        try:
            message = self._recv_message()
        except WorkerCrashError:
            raise RecoveryError(
                f"shard {self.shard_id} worker died during startup"
            ) from None
        kind = message[0]
        if kind == "fatal":
            detail = message[1]
            self.close(force=True)
            raise RecoveryError(
                f"shard {self.shard_id} worker failed to start: {detail}"
            )
        if kind != "ready":
            raise ServiceError(
                f"shard {self.shard_id} protocol error: expected ready, "
                f"got {kind!r}"
            )
        return cast(Dict[str, object], message[1])

    def stop(self) -> Dict[str, object]:
        """Graceful drain: every queued batch is applied, then exit."""
        status = cast(Dict[str, object], self.call("stop"))
        self.process.join(timeout=self.config.worker_timeout_s)
        self.close(force=False)
        return status

    def kill(self) -> None:
        """SIGKILL the worker — the crash tests' murder weapon."""
        if self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=5)

    def close(self, force: bool) -> None:
        """Release OS resources; ``force`` also kills the process."""
        if force:
            self.kill()
        self.queue.close()
        self.queue.cancel_join_thread()
        self._recv.close()
        self._send.close()

    # -- data plane ----------------------------------------------------
    def has_capacity(self) -> bool:
        """Room for one more batch?  Accurate under the ingest lock —
        the parent is the only producer and workers only remove."""
        return not self.queue.full()

    def enqueue(self, events: List[EventTuple], want_ack: bool) -> None:
        """Queue a batch; explicit :class:`BackpressureError` when full."""
        try:
            self.queue.put_nowait(("apply", events, want_ack))
        except queue_module.Full:
            raise BackpressureError(
                self.shard_id, self.config.queue_capacity
            ) from None
        if want_ack:
            self._acks_pending += 1

    def wait_acks(self) -> None:
        """Block until every durable batch sent so far is WAL-appended.

        Replies to commands whose collection was aborted (a fan-out that
        failed on a *different* worker) may still be in the pipe; every
        completed call already consumed its own reply, so any ``result``
        or ``error`` seen here is stale and drains silently.
        """
        while self._acks_pending:
            message = self._recv_message()
            kind = message[0]
            if kind in ("result", "error"):  # stale aborted-fan-out reply
                continue
            if kind != "ack":
                raise ServiceError(
                    f"shard {self.shard_id} protocol error: expected ack, "
                    f"got {kind!r}"
                )
            self._acks_pending -= 1

    # -- control plane -------------------------------------------------
    def start_call(self, name: str, *args: Any) -> int:
        """Send a command without waiting; returns its sequence number.

        Splitting send from collect lets the service issue one command
        to *every* worker and only then collect — the period close runs
        its drains and screens in parallel across the processes.
        """
        self._seq += 1
        try:
            # Blocking (control must not be dropped) but bounded: a dead
            # worker never drains the queue, and waiting forever on it
            # would wedge the whole front-end.
            self.queue.put(("call", self._seq, name, args),
                           timeout=self.config.worker_timeout_s)
        except queue_module.Full:
            raise WorkerCrashError(
                self.shard_id,
                "command queue stayed full past worker_timeout_s"
                if self.process.is_alive() else
                f"exit code {self.process.exitcode}",
            ) from None
        return self._seq

    def finish_call(self, seq: int) -> Any:
        """Collect the reply for :meth:`start_call`'s ``seq``.

        Replies with an older sequence number belong to calls whose
        collection was aborted mid-fan-out; they drain silently instead
        of surfacing as protocol errors on the *next* interaction.
        """
        while True:
            message = self._recv_message()
            kind = message[0]
            if kind == "ack":  # stale durable ack from a failed submit
                self._acks_pending = max(0, self._acks_pending - 1)
                continue
            if kind == "error":
                _, got_seq, detail = message
                if got_seq < seq:  # stale aborted-fan-out reply
                    continue
                if got_seq != seq:
                    raise ServiceError(
                        f"shard {self.shard_id} protocol error: reply seq "
                        f"{got_seq} != expected {seq}"
                    )
                raise ServiceError(
                    f"shard {self.shard_id} command failed: {detail}"
                )
            if kind == "result":
                _, got_seq, value = message
                if got_seq < seq:  # stale aborted-fan-out reply
                    continue
                if got_seq != seq:
                    raise ServiceError(
                        f"shard {self.shard_id} protocol error: reply seq "
                        f"{got_seq} != expected {seq}"
                    )
                return value
            raise ServiceError(
                f"shard {self.shard_id} protocol error: unexpected "
                f"{kind!r} reply"
            )

    def call(self, name: str, *args: Any) -> Any:
        """Round-trip one command (a barrier behind all queued batches)."""
        return self.finish_call(self.start_call(name, *args))

    # -- plumbing ------------------------------------------------------
    def _recv_message(self) -> Tuple[Any, ...]:
        """One reply off the pipe, with liveness-aware timeout."""
        deadline = time.monotonic() + self.config.worker_timeout_s
        while True:
            try:
                if self._recv.poll(0.05):
                    return cast(Tuple[Any, ...], self._recv.recv())
            except (EOFError, OSError):
                raise WorkerCrashError(
                    self.shard_id, "reply channel closed"
                ) from None
            if not self.process.is_alive():
                # One final drain: the child may have replied just
                # before exiting (e.g. the stop handshake).
                if self._recv.poll(0):
                    return cast(Tuple[Any, ...], self._recv.recv())
                raise WorkerCrashError(
                    self.shard_id,
                    f"exit code {self.process.exitcode}",
                )
            if time.monotonic() > deadline:
                raise WorkerCrashError(
                    self.shard_id,
                    f"no reply within {self.config.worker_timeout_s}s "
                    f"(process alive but unresponsive)",
                )

    def queue_depth(self) -> int:
        """Batches enqueued but not yet taken by the worker."""
        try:
            return self.queue.qsize()
        except NotImplementedError:  # pragma: no cover - macOS sem_getvalue
            return -1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProcessShardWorker(id={self.shard_id}, pid={self.pid}, "
            f"alive={self.alive})"
        )
