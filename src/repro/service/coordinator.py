"""The detection service: sharded ingestion, periods, durability.

This is the long-running host for the streaming detector the paper's
Section IV assumes ("the reputation manager keeps track of the
frequency of ratings … and checks for collusion every period T").  The
coordinator owns:

* **Ingestion** — :meth:`DetectionService.submit` validates a batch,
  appends it to the WAL (durable-before-acknowledged), then fans the
  events out to shard queues partitioned by target id.  A full shard
  queue rejects the whole batch *before* anything is written — explicit
  backpressure, never a silent drop.
* **Period orchestration** — :meth:`end_period` drains the shards,
  assembles the *global* period reputation gate from per-shard
  contributions, collects every shard's one-sided screens
  (:class:`~repro.core.model.HalfVerdict`), and joins them — the join
  is where cross-shard symmetric pairs are re-checked.  The merged
  verdicts provably equal
  :class:`~repro.core.optimized.OptimizedCollusionDetector` run on the
  epoch's full rating matrix (property-tested).
* **Durability** — snapshots capture all shard state at a consistent
  point; recovery loads the latest snapshot and replays only the
  current epoch's WAL tail.  An ``end_period`` commits at its snapshot
  write: a crash before that point simply re-runs the period close
  after recovery.

Concurrency: ``submit``, ``end_period`` and ``snapshot`` serialize on
one ingest lock; shard state is confined to worker threads (see
:mod:`repro.service.shard`); metrics are thread-safe counters.  Queries
(``reputation_of``, ``suspects``, ``status``) take the same (re-entrant)
ingest lock for the duration of the read — ``_ingest_lock`` is the
inferred guard of every piece of published state (``repro lint
--guards``), and a query that raced ``end_period`` could otherwise
observe a half-published epoch (new ``_epoch``, old verdicts).
"""

from __future__ import annotations

import pathlib
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, cast

import numpy as np
import numpy.typing as npt

from repro.core.model import DetectionReport, HalfVerdict, join_half_verdicts
from repro.errors import (
    BackpressureError,
    RecoveryError,
    ServiceError,
    UnknownNodeError,
)
from repro.ratings.events import Rating
from repro.rings.detect import RingDetector
from repro.rings.graph import PairCount, SuspectGraph
from repro.service.config import ServiceConfig
from repro.service.metrics import ServiceMetrics
from repro.service.shard import ShardWorker
from repro.service.snapshot import SnapshotStore
from repro.service.wal import WriteAheadLog

__all__ = ["DetectionService", "EpochResult"]


def _snapshot_int(state: Dict[str, object], key: str) -> int:
    """Integer snapshot field, validated (bools are not positions)."""
    value = state.get(key)
    if isinstance(value, bool) or not isinstance(value, int):
        raise RecoveryError(
            f"snapshot field {key!r} must be an integer, got {value!r}"
        )
    return value


@dataclass
class EpochResult:
    """Published outcome of one period close."""

    epoch: int
    report: DetectionReport
    events: int
    reputation: npt.NDArray[np.float64] = field(repr=False)

    def to_dict(self) -> Dict[str, object]:
        """JSON document published to ``GET /suspects``."""
        return {
            "epoch": self.epoch,
            "events": self.events,
            "pairs": [[p.low, p.high] for p in self.report.pairs],
            "colluders": sorted(self.report.colluders()),
            "examined_nodes": self.report.examined_nodes,
            "operations": dict(self.report.operations),
        }


class DetectionService:
    """Sharded online collusion-detection service.

    Lifecycle: construct with a :class:`ServiceConfig`, :meth:`start`
    (which recovers from snapshot + WAL when a ``data_dir`` is
    configured), feed with :meth:`submit`, close periods with
    :meth:`end_period`, :meth:`stop` for a clean shutdown.  The HTTP
    layer (:mod:`repro.service.http_api`) is a thin adapter over these
    methods.
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.metrics = ServiceMetrics()
        self.shards = [ShardWorker(i, config) for i in range(config.num_shards)]
        self.wal: Optional[WriteAheadLog] = None
        self.snapshots: Optional[SnapshotStore] = None
        if config.data_dir is not None:
            data_dir = pathlib.Path(config.data_dir)
            self.wal = WriteAheadLog(data_dir / "wal", fsync=config.fsync)
            self.snapshots = SnapshotStore(
                data_dir / "snapshots", keep=config.keep_snapshots
            )
        self._ingest_lock = threading.RLock()
        self._ops_baselines: List[Dict[str, int]] = [
            {} for _ in range(config.num_shards)
        ]
        self._started = False
        self._epoch = 0
        self._epoch_events = 0          # accepted events this epoch == WAL lines
        self._last_snapshot_events = 0
        self._total_events = 0
        self._published = np.zeros(config.n, dtype=float)
        self._latest_verdicts: Dict[str, object] = {
            "epoch": -1, "events": 0, "pairs": [], "colluders": [],
            "examined_nodes": 0, "operations": {},
        }
        self._history: List[Dict[str, object]] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "DetectionService":
        """Recover durable state (if any) and start the shard workers."""
        with self._ingest_lock:
            if self._started:
                return self
            if self.wal is not None:
                self._recover_locked()
                self.wal.open_epoch(self._epoch)
            for shard in self.shards:
                shard.start()
            self._started = True
        return self

    def stop(self, snapshot: bool = True) -> None:
        """Drain and stop the workers; optionally snapshot first.

        A final snapshot makes the next :meth:`start` replay nothing —
        a clean restart.  ``snapshot=False`` models a crash for tests.
        """
        with self._ingest_lock:
            if not self._started:
                return
            for shard in self.shards:
                shard.drain()
            if snapshot and self.config.durable:
                self._snapshot_locked()
            for shard in self.shards:
                shard.stop()
            if self.wal is not None:
                self.wal.close()
            self._started = False

    def kill(self) -> None:
        """Simulate a crash: stop workers with no snapshot or drain.

        Anything already acknowledged is in the WAL; recovery must
        reproduce it.  Used by crash/recovery tests and nothing else.
        """
        with self._ingest_lock:
            for shard in self.shards:
                if shard.running:
                    shard.drain()
                    shard.stop()
            if self.wal is not None:
                self.wal.close()
            self._started = False

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def _thresholds_signature(self) -> List[object]:
        th = self.config.thresholds
        return [th.t_r, th.t_a, th.t_b, th.t_n,
                self.config.multi_booster_exclusion]

    def _recover_locked(self) -> None:
        # Caller (start) holds _ingest_lock — hence the _locked suffix;
        # the writes below mutate shared epoch/published state.
        assert self.snapshots is not None and self.wal is not None
        state = self.snapshots.load_latest()
        if state is not None:
            if state.get("n") != self.config.n:
                raise RecoveryError(
                    f"snapshot universe n={state['n']} != configured n={self.config.n}"
                )
            if state.get("num_shards") != self.config.num_shards:
                raise RecoveryError(
                    f"snapshot has {state['num_shards']} shards, "
                    f"configured {self.config.num_shards} — repartitioning "
                    f"requires an offline replay, not a restart"
                )
            if state.get("thresholds") != self._thresholds_signature():
                raise RecoveryError(
                    f"snapshot thresholds {state['thresholds']} != configured "
                    f"{self._thresholds_signature()}"
                )
            epoch = _snapshot_int(state, "epoch")
            epoch_events = _snapshot_int(state, "wal_applied")
            total_events = _snapshot_int(state, "total_events")
            published = np.asarray(
                cast("List[float]", state["published"]), dtype=float
            )
            latest_verdicts = cast(
                Dict[str, object], state["latest_verdicts"]
            )
            shard_states = cast(
                "List[Dict[str, object]]", state["shards"]
            )
            for shard, shard_state in zip(self.shards, shard_states):
                shard.restore_state(shard_state)
        else:
            epoch = self._epoch
            epoch_events = self._epoch_events
            total_events = self._total_events
            published = self._published
            latest_verdicts = self._latest_verdicts
        # Replay the current epoch's WAL tail directly into the shards
        # (workers are not running yet — same apply() code path).
        replayed = 0
        for rating in self.wal.replay(
            epoch, skip=epoch_events, n=self.config.n
        ):
            self.shards[self.config.shard_of(rating.target)].apply([rating])
            replayed += 1
        if replayed:
            self.metrics.ops.add("recovered_events", replayed)
        # Commit in one non-raising tail: a snapshot or WAL record that
        # fails to decode above must leave the coordinator's epoch and
        # published state exactly as it was (REP008).
        self._epoch = epoch
        self._epoch_events = epoch_events + replayed
        self._total_events = total_events + replayed
        self._published = published
        self._latest_verdicts = latest_verdicts
        self._last_snapshot_events = epoch_events + replayed

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def submit(self, ratings: Sequence[Rating]) -> int:
        """Accept a batch of ratings; returns the number accepted.

        All-or-nothing: ids are validated and every involved shard's
        queue capacity is checked *before* the WAL append, so a
        rejected batch (:class:`~repro.errors.BackpressureError`) left
        no trace and can be retried verbatim.
        """
        batch = list(ratings)
        if not batch:
            return 0
        started = time.perf_counter()
        with self._ingest_lock:
            if not self._started:
                raise ServiceError("service is not running — call start()")
            n = self.config.n
            per_shard: Dict[int, List[Rating]] = {}
            for event in batch:
                if not isinstance(event, Rating):
                    raise ServiceError(
                        f"submit() takes Rating events, got {type(event).__name__}"
                    )
                if event.rater >= n or event.target >= n:
                    raise UnknownNodeError(max(event.rater, event.target), n)
                per_shard.setdefault(
                    self.config.shard_of(event.target), []
                ).append(event)
            try:
                for shard_id in per_shard:
                    if not self.shards[shard_id].has_capacity():
                        raise BackpressureError(
                            shard_id, self.config.queue_capacity
                        )
            except BackpressureError:
                self.metrics.ops.add("ingest_rejected_batches", 1)
                self.metrics.ops.add("ingest_rejected_events", len(batch))
                raise
            if self.wal is not None:
                self.wal.append(batch)
                self.metrics.ops.add("wal_appends", 1)
            for shard_id, sub_batch in per_shard.items():
                self.shards[shard_id].enqueue(sub_batch)
            self._epoch_events += len(batch)
            self._total_events += len(batch)
            self.metrics.ops.add("ingest_batches", 1)
            self.metrics.ops.add("ingest_events", len(batch))
            self.metrics.ingest_latency.observe(time.perf_counter() - started)
            if (
                self.config.durable
                and self.config.snapshot_every > 0
                and self._epoch_events - self._last_snapshot_events
                >= self.config.snapshot_every
            ):
                self._snapshot_locked()
        return len(batch)

    def submit_one(self, rater: int, target: int, value: int,
                   time_stamp: float = 0.0) -> None:
        """Convenience single-event ingest (validates via :class:`Rating`)."""
        self.submit([Rating(rater=rater, target=target, value=value,
                            time=time_stamp)])

    def drain(self) -> None:
        """Block until every accepted event has been applied.

        A barrier through each shard's queue: after it returns,
        queries reflect all prior :meth:`submit` calls.  The load
        generator (:mod:`repro.bench.loadgen`) closes each stage with
        it so closed-loop throughput measures detector processing, not
        queue absorption.
        """
        with self._ingest_lock:
            if not self._started:
                raise ServiceError("service is not running — call start()")
            for shard in self.shards:
                shard.drain()

    # ------------------------------------------------------------------
    # period orchestration
    # ------------------------------------------------------------------
    def _evaluate_locked(
        self,
    ) -> "Tuple[DetectionReport, npt.NDArray[np.float64]]":
        """Drain, build the global gate, screen, and join — no mutation.

        The shared evaluation behind :meth:`end_period` and
        :meth:`peek`; caller holds the ingest lock.
        """
        for shard in self.shards:
            shard.drain()
        gate = np.zeros(self.config.n, dtype=float)
        for shard in self.shards:
            gate += shard.call(lambda s: s.detector.period_reputation())

        halves: List[HalfVerdict] = []
        pass_operations: Dict[str, int] = {}
        for shard in self.shards:
            def _candidates(
                s: ShardWorker,
                _gate: "npt.NDArray[np.float64]" = gate,
            ) -> "Tuple[List[HalfVerdict], Dict[str, int]]":
                before = s.detector.ops.snapshot()
                found = s.detector.period_candidates(reputation=_gate)
                return found, s.detector.ops.diff(before)
            shard_halves, ops_diff = shard.call(_candidates)
            halves.extend(shard_halves)
            for name, value in ops_diff.items():
                pass_operations[name] = pass_operations.get(name, 0) + value

        report = DetectionReport(
            method="service",
            examined_nodes=int((gate >= self.config.thresholds.t_r).sum()),
        )
        for pair in join_half_verdicts(halves):
            report.add(pair)
        report.operations = pass_operations
        return report, gate

    def peek(self) -> EpochResult:
        """Evaluate the open epoch *without* closing it.

        Same merge as :meth:`end_period` but nothing is reset,
        published, snapshotted or rotated — the epoch keeps
        accumulating.  ``repro replay --verify`` uses this to audit a
        recovered state against the batch detector.
        """
        with self._ingest_lock:
            if not self._started:
                raise ServiceError("service is not running — call start()")
            report, _gate = self._evaluate_locked()
            published = np.zeros(self.config.n, dtype=float)
            for shard in self.shards:
                published += shard.call(lambda s: s.cumulative.reputation())
            return EpochResult(
                epoch=self._epoch,
                report=report,
                events=self._epoch_events,
                reputation=published,
            )

    def collusion_graph(self, edge_floor: float = 0.5) -> Dict[str, object]:
        """The live suspect graph + ring verdicts for the open epoch.

        Read-only evaluation (like :meth:`peek`): drains the shards,
        rebuilds the global reputation gate, collects the half-verdicts
        and raw pair counters from every shard, assembles a
        :class:`~repro.rings.graph.SuspectGraph` and runs the
        :class:`~repro.rings.detect.RingDetector` over it.  Nothing is
        reset or published — the epoch keeps accumulating.  Serves
        ``GET /collusion-graph``.
        """
        with self._ingest_lock:
            if not self._started:
                raise ServiceError("service is not running — call start()")
            for shard in self.shards:
                shard.drain()
            gate = np.zeros(self.config.n, dtype=float)
            for shard in self.shards:
                gate += shard.call(lambda s: s.detector.period_reputation())

            halves: List[HalfVerdict] = []
            pair_counts: List[PairCount] = []
            node_eff = np.zeros(self.config.n, dtype=np.int64)
            node_pos = np.zeros(self.config.n, dtype=np.int64)
            for shard in self.shards:
                def _export(
                    s: ShardWorker,
                    _gate: "npt.NDArray[np.float64]" = gate,
                ) -> "Tuple[List[HalfVerdict], List[PairCount], np.ndarray, np.ndarray]":
                    return (
                        s.detector.period_candidates(reputation=_gate),
                        s.detector.pair_counts(),
                        *s.detector.node_counters(),
                    )
                shard_halves, shard_counts, shard_eff, shard_pos = \
                    shard.call(_export)
                halves.extend(shard_halves)
                pair_counts.extend(shard_counts)
                node_eff += shard_eff
                node_pos += shard_pos

            graph = SuspectGraph.build(
                self.config.n, self.config.thresholds, halves, pair_counts,
                gate, node_eff, node_pos, edge_floor=edge_floor,
            )
            report = RingDetector(self.config.thresholds).detect(graph)
            self.metrics.ops.add("collusion_graph_queries", 1)
            return {
                "schema_version": 1,
                "epoch": self._epoch,
                "events": self._epoch_events,
                "graph": graph.to_dict(),
                "pairs": [[p.low, p.high] for p in report.pairs],
                "groups": [g.to_dict() for g in report.groups],
            }

    def end_period(self) -> EpochResult:
        """Close the current epoch and publish its verdicts.

        Orchestration: (1) barrier-drain every shard; (2) sum the
        per-shard period-reputation contributions into the global gate
        vector; (3) collect each shard's half-verdicts against that
        gate; (4) join them — cross-shard symmetric pairs meet here;
        (5) publish cumulative reputations + epoch verdicts; (6) reset
        period state, snapshot, rotate the WAL.  Commits at the
        snapshot write (step 6): a crash before that re-runs the close
        after recovery; a crash after it finds the new epoch already
        current.
        """
        started = time.perf_counter()
        with self._ingest_lock:
            if not self._started:
                raise ServiceError("service is not running — call start()")
            report, _gate = self._evaluate_locked()

            # Everything since the last close (ingest observes + the
            # screening pass) flows into the detector:* metrics.  The
            # new baselines are staged into a local and committed with
            # the epoch roll below: a shard.call that raises mid-loop
            # must not leave half the baselines advanced (REP008).
            new_baselines: Dict[int, Dict[str, int]] = {}
            for shard in self.shards:
                ops_now = shard.call(lambda s: s.detector.ops.snapshot())
                baseline = self._ops_baselines[shard.shard_id]
                self.metrics.merge_detector_ops({
                    name: value - baseline.get(name, 0)
                    for name, value in ops_now.items()
                    if value - baseline.get(name, 0)
                })
                new_baselines[shard.shard_id] = ops_now

            published = np.zeros(self.config.n, dtype=float)
            for shard in self.shards:
                published += shard.call(lambda s: s.cumulative.reputation())

            for shard in self.shards:
                shard.call(lambda s: s.detector.reset_period())

            result = EpochResult(
                epoch=self._epoch,
                report=report,
                events=self._epoch_events,
                reputation=published,
            )
            latest = result.to_dict()
            # Commit: one non-raising tail.
            for shard_id, ops in new_baselines.items():
                self._ops_baselines[shard_id] = ops
            self._published = published
            self._latest_verdicts = latest
            self._history.append(latest)
            self._epoch += 1
            self._epoch_events = 0
            self._last_snapshot_events = 0
            self.metrics.ops.add("periods_closed", 1)
            if len(report):
                self.metrics.ops.add("detections", len(report))
            if self.wal is not None:
                self._snapshot_locked()      # commit point
                self.wal.rotate(self._epoch)
            self.metrics.end_period_latency.observe(time.perf_counter() - started)
        return result

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> None:
        """Force a consistent snapshot (drains the shards first)."""
        with self._ingest_lock:
            if not self.config.durable:
                raise ServiceError("snapshots need a data_dir (durable mode)")
            for shard in self.shards:
                shard.drain()
            self._snapshot_locked()

    def _snapshot_locked(self) -> None:
        """Write a snapshot; caller holds the lock and has drained."""
        assert self.snapshots is not None  # callers check durable mode
        for shard in self.shards:
            shard.drain()
        state: Dict[str, object] = {
            "epoch": self._epoch,
            "wal_applied": self._epoch_events,
            "total_events": self._total_events,
            "n": self.config.n,
            "num_shards": self.config.num_shards,
            "thresholds": self._thresholds_signature(),
            "shards": [shard.call(ShardWorker.export_state)
                       for shard in self.shards],
            "published": [float(v) for v in self._published],
            "latest_verdicts": self._latest_verdicts,
        }
        self.snapshots.save(state)
        self._last_snapshot_events = self._epoch_events
        self.metrics.ops.add("snapshots", 1)

    # ------------------------------------------------------------------
    # queries (consistent reads under the re-entrant ingest lock)
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        with self._ingest_lock:
            return self._epoch

    @property
    def epoch_events(self) -> int:
        """Events accepted into the currently open epoch."""
        with self._ingest_lock:
            return self._epoch_events

    @property
    def total_events(self) -> int:
        with self._ingest_lock:
            return self._total_events

    def reputation_of(self, node: int, live: bool = False) -> float:
        """Published cumulative reputation of ``node``.

        ``live=True`` reads the owning shard's current accumulator
        (barrier through its queue) instead of the last epoch-published
        value.
        """
        if not 0 <= node < self.config.n:
            raise UnknownNodeError(node, self.config.n)
        if live:
            shard = self.shards[self.config.shard_of(node)]
            return float(shard.call(lambda s: s.cumulative.reputation_of(node)))
        with self._ingest_lock:
            return float(self._published[node])

    def suspects(self) -> Dict[str, object]:
        """Latest epoch's published verdicts (epoch ``-1`` = none yet)."""
        with self._ingest_lock:
            return dict(self._latest_verdicts)

    def history(self) -> List[Dict[str, object]]:
        """Verdicts of every epoch closed by this process, oldest first."""
        with self._ingest_lock:
            return list(self._history)

    def status(self) -> Dict[str, object]:
        """Health document for ``GET /healthz``.

        The ``workers`` block mirrors the process-per-shard service's
        per-worker fields (docs/SERVICE.md) so monitoring reads one
        contract regardless of deployment mode; thread workers have no
        pid or restart count of their own.
        """
        with self._ingest_lock:
            return {
                "status": "ok" if self._started else "stopped",
                "mode": "thread",
                "epoch": self._epoch,
                "epoch_events": self._epoch_events,
                "total_events": self._total_events,
                "shards": self.config.num_shards,
                "queue_depths": [shard.queue.qsize()
                                 for shard in self.shards],
                "durable": self.config.durable,
                "workers": [
                    {
                        "shard": shard.shard_id,
                        "pid": None,
                        "alive": shard.running,
                        "queue_depth": shard.queue.qsize(),
                        "epoch_events": None,
                        "restarts": 0,
                    }
                    for shard in self.shards
                ],
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._ingest_lock:
            return (
                f"DetectionService(n={self.config.n}, "
                f"shards={self.config.num_shards}, "
                f"epoch={self._epoch}, events={self._total_events})"
            )
