"""Process-per-shard detection service: the multi-core front-end.

:class:`ProcessDetectionService` has the same public surface and the
same verdict guarantees as the thread-per-shard
:class:`~repro.service.coordinator.DetectionService`, but each shard's
detector runs in its own OS process (:mod:`repro.service.worker`), so
ingest and screening scale past the GIL.  The differences that matter:

* **Durability moves into the workers.**  Each worker appends its
  sub-batch to its *own* WAL under ``data_dir/shard-NN/`` before
  acknowledging; :meth:`submit` in durable mode returns only after
  every involved worker has acknowledged, preserving
  durable-before-acknowledged end to end.  The coordinator persists
  only a small ``meta.json`` (epoch, published reputations, latest
  verdicts), written atomically.
* **Epoch commit ordering is meta-first.**  A period close drains and
  screens, then (1) atomically writes ``meta.json`` naming the new
  epoch — the commit point — and (2) tells every worker to reset,
  snapshot and rotate.  A crash between (1) and (2) leaves workers one
  epoch behind the meta; on restart each such worker replays its WAL
  tail and performs the same reset/snapshot/rotate itself (idempotent,
  because ingest never resumes until every worker has advanced).
* **Crash detection + restart-from-WAL.**  A dead worker is detected on
  the next interaction — *any* interaction: submit checks liveness for
  the shards it touches, and every control-plane fan-out
  (``peek``/``end_period``/``drain``/graph/snapshot) checks all of them
  — and, in durable mode, restarted from its own snapshot + WAL.
  Batches the service acknowledged are in that WAL by contract.  A
  batch in flight when a worker died surfaces as
  :class:`~repro.errors.WorkerCrashError`, but sub-batches *other*
  shards acknowledged first are durably applied: submit is
  at-least-once under a crash, and only
  :class:`~repro.errors.BackpressureError` guarantees zero trace.

Verdict equivalence is unchanged: the period close sums per-worker
reputation contributions into the global gate, collects per-worker
half-verdicts against it, and joins them — property-tested equal to
the batch :class:`~repro.core.optimized.OptimizedCollusionDetector`
and to the thread service on the same stream.
"""

from __future__ import annotations

import multiprocessing
import pathlib
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple, cast

import numpy as np
import numpy.typing as npt

from repro.core.model import DetectionReport, HalfVerdict, join_half_verdicts
from repro.errors import (
    BackpressureError,
    RecoveryError,
    ServiceError,
    UnknownNodeError,
    WorkerCrashError,
)
from repro.ratings.events import Rating
from repro.rings.detect import RingDetector
from repro.rings.graph import PairCount, SuspectGraph
from repro.service.config import ServiceConfig
from repro.service.coordinator import EpochResult
from repro.service.metrics import ServiceMetrics
from repro.service.snapshot import META_FORMAT, read_meta, write_meta
from repro.service.wal import WriteAheadLog
from repro.service.worker import (
    EventTuple,
    ProcessShardWorker,
    _RESTART_METHOD,
    _START_METHOD,
    _thresholds_signature,
    shard_data_dir,
)

__all__ = ["ProcessDetectionService", "META_FORMAT"]


class ProcessDetectionService:
    """Sharded collusion-detection service, one process per shard.

    Drop-in for :class:`~repro.service.DetectionService`: same
    constructor, same lifecycle (``start`` / ``submit`` /
    ``end_period`` / ``stop``), same HTTP adapter.  ``status()``
    additionally reports per-worker liveness (pid, queue depth,
    restarts) for ``GET /healthz``.
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.metrics = ServiceMetrics()
        self.workers: List[ProcessShardWorker] = []
        # Initial workers fork before any HTTP thread exists; runtime
        # restarts must not fork a multithreaded parent (see worker.py).
        self._ctx = multiprocessing.get_context(_START_METHOD)
        self._restart_ctx = multiprocessing.get_context(_RESTART_METHOD)
        self._meta_path: Optional[pathlib.Path] = None
        if config.data_dir is not None:
            self._meta_path = pathlib.Path(config.data_dir) / "meta.json"
        self._ingest_lock = threading.RLock()
        self._ops_baselines: List[Dict[str, int]] = [
            {} for _ in range(config.num_shards)
        ]
        self._started = False
        self._epoch = 0
        self._accepted_per_shard = [0] * config.num_shards
        self._total_per_shard = [0] * config.num_shards
        self._restarts = [0] * config.num_shards
        self._last_snapshot_events = 0
        self._last_close_error: Optional[str] = None
        self._published = np.zeros(config.n, dtype=float)
        self._latest_verdicts: Dict[str, object] = {
            "epoch": -1, "events": 0, "pairs": [], "colluders": [],
            "examined_nodes": 0, "operations": {},
        }
        self._history: List[Dict[str, object]] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ProcessDetectionService":
        """Load the coordinator meta, spawn + recover every worker."""
        with self._ingest_lock:
            if self._started:
                return self
            if self._meta_path is not None:
                self._load_meta_locked()
            self.workers = []
            try:
                for shard_id in range(self.config.num_shards):
                    self._spawn_worker_locked(shard_id)
            except Exception:
                # A spawn that fails mid-loop must not orphan the
                # workers (and their Pipes) already started: close
                # them and leave zero service state behind (REP008).
                for worker in self.workers:
                    worker.close(force=True)
                self.workers = []
                raise
            self._started = True
        return self

    def stop(self, snapshot: bool = True) -> None:
        """Graceful drain and shutdown; optionally snapshot first.

        Every worker applies everything already queued before exiting
        (the stop command rides the same FIFO queue as the batches), so
        a clean stop loses nothing even without the snapshot.
        """
        with self._ingest_lock:
            if not self._started:
                return
            if snapshot and self.config.durable:
                self._snapshot_locked()
            for worker in self.workers:
                if worker.alive:
                    worker.stop()
                else:
                    worker.close(force=True)
            self._started = False

    def kill(self) -> None:
        """Simulate a front-end crash: SIGKILL workers, no drain.

        Durable mode guarantees every *acknowledged* batch is already
        in some worker's WAL; recovery must reproduce exactly those.
        """
        with self._ingest_lock:
            for worker in self.workers:
                worker.close(force=True)
            self._started = False

    def kill_worker(self, shard_id: int) -> None:
        """SIGKILL one worker (crash-injection hook for tests/chaos)."""
        with self._ingest_lock:
            self.workers[shard_id].kill()

    # ------------------------------------------------------------------
    # recovery plumbing
    # ------------------------------------------------------------------
    def _load_meta_locked(self) -> None:
        assert self._meta_path is not None
        meta = read_meta(self._meta_path)
        if meta is None:
            return
        if meta.get("n") != self.config.n:
            raise RecoveryError(
                f"meta universe n={meta['n']} != configured n={self.config.n}"
            )
        if meta.get("num_shards") != self.config.num_shards:
            raise RecoveryError(
                f"meta has {meta['num_shards']} shards, configured "
                f"{self.config.num_shards} — repartitioning requires an "
                f"offline replay, not a restart"
            )
        if meta.get("thresholds") != _thresholds_signature(self.config):
            raise RecoveryError(
                f"meta thresholds {meta['thresholds']} != configured "
                f"{_thresholds_signature(self.config)}"
            )
        epoch = meta.get("epoch")
        if isinstance(epoch, bool) or not isinstance(epoch, int):
            raise RecoveryError(f"meta epoch must be an int, got {epoch!r}")
        # Stage the raising decode, then commit in one non-raising
        # tail: a malformed published vector must not leave the epoch
        # advanced without its verdicts (REP008).
        published = np.asarray(
            cast("List[float]", meta["published"]), dtype=float
        )
        latest_verdicts = cast(
            Dict[str, object], meta["latest_verdicts"]
        )
        self._epoch = epoch
        self._published = published
        self._latest_verdicts = latest_verdicts

    def _write_meta_locked(self) -> None:
        """Atomically persist the coordinator meta — the commit point."""
        assert self._meta_path is not None
        write_meta(self._meta_path, {
            "epoch": self._epoch,
            "total_events": self.total_events,
            "n": self.config.n,
            "num_shards": self.config.num_shards,
            "thresholds": _thresholds_signature(self.config),
            "published": [float(v) for v in self._published],
            "latest_verdicts": self._latest_verdicts,
        })

    def _spawn_worker_locked(
        self, shard_id: int,
        context: Optional[multiprocessing.context.BaseContext] = None,
    ) -> ProcessShardWorker:
        worker = ProcessShardWorker(
            shard_id, self.config, meta_epoch=self._epoch,
            context=context if context is not None else self._ctx,
        )
        status = worker.ready_status
        if status.get("epoch") != self._epoch:
            worker.close(force=True)
            raise RecoveryError(
                f"shard {shard_id} recovered to epoch {status.get('epoch')}, "
                f"coordinator is at {self._epoch}"
            )
        if len(self.workers) == shard_id:
            self.workers.append(worker)
        else:
            self.workers[shard_id] = worker
        self._accepted_per_shard[shard_id] = cast(
            int, status.get("epoch_events", 0)
        )
        self._total_per_shard[shard_id] = cast(
            int, status.get("total_events", 0)
        )
        replayed = cast(int, status.get("replayed", 0))
        if replayed:
            self.metrics.ops.add("recovered_events", replayed)
        self.metrics.worker_restart_latency.observe(
            cast(float, status.get("restart_ms", 0.0)) / 1000.0
        )
        return worker

    def _restart_worker_locked(self, shard_id: int) -> None:
        """Replace a dead worker; durable workers recover from their WAL.

        An ephemeral (no ``data_dir``) worker has nothing to recover
        from — its restart starts the shard's counters empty, which the
        docs flag loudly; run durable if restarts must be lossless.

        Restarts use :data:`_RESTART_METHOD` (forkserver/spawn), never
        ``fork``: by now HTTP handler threads exist, and forking a
        multithreaded parent can deadlock the child on a lock another
        thread held at fork time.
        """
        self.workers[shard_id].close(force=True)
        self._restarts[shard_id] += 1
        self.metrics.ops.add("worker_restarts", 1)
        self._spawn_worker_locked(shard_id, context=self._restart_ctx)

    def _ensure_workers_alive_locked(self, shard_ids: Sequence[int]) -> None:
        for shard_id in shard_ids:
            if not self.workers[shard_id].alive:
                self._restart_worker_locked(shard_id)

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def submit(self, ratings: Sequence[Rating]) -> int:
        """Accept a batch; all involved workers must have queue room.

        Durable mode returns only once every involved worker has
        WAL-appended its sub-batch (durable-before-acknowledged).  A
        batch rejected with :class:`BackpressureError` left no trace
        anywhere and can be retried verbatim.  A batch that fails with
        :class:`~repro.errors.WorkerCrashError` is different: sub-batches
        other shards acknowledged before the crash are durably applied
        (and counted), so retrying the whole batch verbatim would
        double-count those events — at-least-once, not exactly-once.
        """
        batch = list(ratings)
        if not batch:
            return 0
        started = time.perf_counter()
        with self._ingest_lock:
            if not self._started:
                raise ServiceError("service is not running — call start()")
            n = self.config.n
            per_shard: Dict[int, List[EventTuple]] = {}
            for event in batch:
                if not isinstance(event, Rating):
                    raise ServiceError(
                        f"submit() takes Rating events, got {type(event).__name__}"
                    )
                if event.rater >= n or event.target >= n:
                    raise UnknownNodeError(max(event.rater, event.target), n)
                per_shard.setdefault(
                    self.config.shard_of(event.target), []
                ).append((event.rater, event.target, event.value, event.time))
            self._ensure_workers_alive_locked(sorted(per_shard))
            try:
                for shard_id in per_shard:
                    if not self.workers[shard_id].has_capacity():
                        raise BackpressureError(
                            shard_id, self.config.queue_capacity
                        )
            except BackpressureError:
                self.metrics.ops.add("ingest_rejected_batches", 1)
                self.metrics.ops.add("ingest_rejected_events", len(batch))
                raise
            durable = self.config.durable
            for shard_id, sub_batch in per_shard.items():
                self.workers[shard_id].enqueue(sub_batch, want_ack=durable)
            if durable:
                # Best-effort ack collection: if one worker crashes, the
                # sub-batches the *other* shards acknowledged are already
                # WAL-appended and applied — count them, then surface the
                # crash.  The batch is therefore at-least-once under
                # WorkerCrashError (see the exception's docstring); only
                # BackpressureError guarantees zero trace.
                crash: Optional[WorkerCrashError] = None
                acked: List[int] = []
                for shard_id in per_shard:
                    try:
                        self.workers[shard_id].wait_acks()
                    except WorkerCrashError as exc:
                        if crash is None:
                            crash = exc
                    else:
                        acked.append(shard_id)
                self.metrics.ops.add("wal_appends", len(acked))
                if crash is not None:
                    for shard_id in acked:
                        sub_batch = per_shard[shard_id]
                        self._accepted_per_shard[shard_id] += len(sub_batch)
                        self._total_per_shard[shard_id] += len(sub_batch)
                    raise crash
            for shard_id, sub_batch in per_shard.items():
                self._accepted_per_shard[shard_id] += len(sub_batch)
                self._total_per_shard[shard_id] += len(sub_batch)
            self.metrics.ops.add("ingest_batches", 1)
            self.metrics.ops.add("ingest_events", len(batch))
            self.metrics.ingest_latency.observe(time.perf_counter() - started)
            if (
                durable
                and self.config.snapshot_every > 0
                and self.epoch_events - self._last_snapshot_events
                >= self.config.snapshot_every
            ):
                self._snapshot_locked()
        return len(batch)

    def submit_one(self, rater: int, target: int, value: int,
                   time_stamp: float = 0.0) -> None:
        """Convenience single-event ingest (validates via :class:`Rating`)."""
        self.submit([Rating(rater=rater, target=target, value=value,
                            time=time_stamp)])

    def drain(self) -> None:
        """Block until every accepted event has been applied.

        A barrier command behind each worker's queued batches: after it
        returns, queries reflect all prior :meth:`submit` calls.  Same
        contract as :meth:`DetectionService.drain
        <repro.service.coordinator.DetectionService.drain>`.
        """
        with self._ingest_lock:
            if not self._started:
                raise ServiceError("service is not running — call start()")
            self._fanout_locked("barrier")

    # ------------------------------------------------------------------
    # period orchestration
    # ------------------------------------------------------------------
    def _fanout_locked(self, name: str, *args: object) -> List[object]:
        """Issue one command to every worker, then collect all replies.

        The issue-all-then-collect split is where multi-core pays off at
        the period boundary: every worker drains its queue and runs the
        command concurrently.

        Every control-plane interaction passes through here, so this is
        also where crashed workers get restarted: a worker that died
        since the last interaction is respawned (durable workers from
        their own snapshot + WAL) *before* the command goes out, which
        keeps ``peek``/``end_period``/``drain`` available after a crash
        instead of failing until the next submit happens to touch the
        dead shard.

        Collection is best-effort: a failure on one worker does not
        abandon the replies the others already sent (uncollected replies
        would surface as protocol errors on the next interaction).  The
        first failure is re-raised once every live worker has been
        drained.
        """
        self._ensure_workers_alive_locked(range(self.config.num_shards))
        first_error: Optional[Exception] = None
        seqs: List[Optional[int]] = []
        for worker in self.workers:
            try:
                seqs.append(worker.start_call(name, *args))
            except WorkerCrashError as exc:
                seqs.append(None)
                if first_error is None:
                    first_error = exc
        replies: List[object] = []
        for worker, seq in zip(self.workers, seqs):
            if seq is None:
                replies.append(None)
                continue
            try:
                replies.append(worker.finish_call(seq))
            except ServiceError as exc:  # includes WorkerCrashError
                replies.append(None)
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return replies

    def _evaluate_locked(
        self,
    ) -> "Tuple[DetectionReport, npt.NDArray[np.float64]]":
        """Drain, build the global gate, screen, and join — no mutation."""
        gate = np.zeros(self.config.n, dtype=float)
        for contribution in self._fanout_locked("reputation"):
            gate += cast("npt.NDArray[np.float64]", contribution)

        halves: List[HalfVerdict] = []
        pass_operations: Dict[str, int] = {}
        for reply in self._fanout_locked("candidates", gate):
            shard_halves, ops_diff = cast(
                "Tuple[List[HalfVerdict], Dict[str, int]]", reply
            )
            halves.extend(shard_halves)
            for op_name, value in ops_diff.items():
                pass_operations[op_name] = pass_operations.get(op_name, 0) + value

        report = DetectionReport(
            method="service",
            examined_nodes=int((gate >= self.config.thresholds.t_r).sum()),
        )
        for pair in join_half_verdicts(halves):
            report.add(pair)
        report.operations = pass_operations
        return report, gate

    def peek(self) -> EpochResult:
        """Evaluate the open epoch *without* closing it."""
        with self._ingest_lock:
            if not self._started:
                raise ServiceError("service is not running — call start()")
            report, _gate = self._evaluate_locked()
            published = np.zeros(self.config.n, dtype=float)
            for contribution in self._fanout_locked("cumulative"):
                published += cast("npt.NDArray[np.float64]", contribution)
            return EpochResult(
                epoch=self._epoch,
                report=report,
                events=self.epoch_events,
                reputation=published,
            )

    def collusion_graph(self, edge_floor: float = 0.5) -> Dict[str, object]:
        """The live suspect graph + ring verdicts for the open epoch."""
        with self._ingest_lock:
            if not self._started:
                raise ServiceError("service is not running — call start()")
            gate = np.zeros(self.config.n, dtype=float)
            for contribution in self._fanout_locked("reputation"):
                gate += cast("npt.NDArray[np.float64]", contribution)

            halves: List[HalfVerdict] = []
            pair_counts: List[PairCount] = []
            node_eff = np.zeros(self.config.n, dtype=np.int64)
            node_pos = np.zeros(self.config.n, dtype=np.int64)
            for reply in self._fanout_locked("graph", gate):
                shard_halves, shard_counts, shard_eff, shard_pos = cast(
                    "Tuple[List[HalfVerdict], List[PairCount], np.ndarray, np.ndarray]",
                    reply,
                )
                halves.extend(shard_halves)
                pair_counts.extend(shard_counts)
                node_eff += shard_eff
                node_pos += shard_pos

            graph = SuspectGraph.build(
                self.config.n, self.config.thresholds, halves, pair_counts,
                gate, node_eff, node_pos, edge_floor=edge_floor,
            )
            report = RingDetector(self.config.thresholds).detect(graph)
            self.metrics.ops.add("collusion_graph_queries", 1)
            return {
                "schema_version": 1,
                "epoch": self._epoch,
                "events": self.epoch_events,
                "graph": graph.to_dict(),
                "pairs": [[p.low, p.high] for p in report.pairs],
                "groups": [g.to_dict() for g in report.groups],
            }

    def end_period(self) -> EpochResult:
        """Close the current epoch and publish its verdicts.

        Orchestration matches the thread service step for step; only
        the commit differs: the coordinator meta is written (atomic
        rename) *before* the workers reset/snapshot/rotate, and a
        worker that crashes between the two performs the same epilogue
        itself on restart (see the module docstring).
        """
        started = time.perf_counter()
        with self._ingest_lock:
            if not self._started:
                raise ServiceError("service is not running — call start()")
            report, _gate = self._evaluate_locked()

            # Stage the new ops baselines; a fan-out that raises
            # mid-loop must not leave half of them advanced (REP008).
            new_baselines: Dict[int, Dict[str, int]] = {}
            for shard_id, reply in enumerate(self._fanout_locked("ops")):
                ops_now = cast(Dict[str, int], reply)
                baseline = self._ops_baselines[shard_id]
                self.metrics.merge_detector_ops({
                    name: value - baseline.get(name, 0)
                    for name, value in ops_now.items()
                    if value - baseline.get(name, 0)
                })
                new_baselines[shard_id] = ops_now

            published = np.zeros(self.config.n, dtype=float)
            for contribution in self._fanout_locked("cumulative"):
                published += cast("npt.NDArray[np.float64]", contribution)

            result = EpochResult(
                epoch=self._epoch,
                report=report,
                events=self.epoch_events,
                reputation=published,
            )
            latest = result.to_dict()
            # Commit: one non-raising tail.
            for shard_id, ops in new_baselines.items():
                self._ops_baselines[shard_id] = ops
            self._published = published
            self._latest_verdicts = latest
            self._history.append(latest)
            self._epoch += 1
            self._accepted_per_shard = [0] * self.config.num_shards
            self._last_snapshot_events = 0
            self._last_close_error = None
            self.metrics.ops.add("periods_closed", 1)
            if len(report):
                self.metrics.ops.add("detections", len(report))
            if self._meta_path is not None:
                self._write_meta_locked()      # commit point
            # Past the commit point the close has happened: the epoch is
            # durably published and this method must return the result,
            # not an error an HTTP client would retry into closing a
            # second, nearly-empty epoch.  A worker that fails here is
            # restarted (recovering to the committed epoch by itself —
            # advance is idempotent at the target) and the degradation
            # is surfaced via status()/metrics instead of the caller.
            try:
                self._fanout_locked("advance", self._epoch)
            except ServiceError as exc:
                self._last_close_error = f"epoch {self._epoch - 1}: {exc}"
                self.metrics.ops.add("end_period_degraded", 1)
                try:
                    self._ensure_workers_alive_locked(
                        range(self.config.num_shards)
                    )
                except ServiceError:
                    pass  # still dead — the next interaction retries
            if self.config.durable:
                self.metrics.ops.add("snapshots", self.config.num_shards)
            self.metrics.end_period_latency.observe(time.perf_counter() - started)
        return result

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> None:
        """Force a consistent snapshot across coordinator + workers."""
        with self._ingest_lock:
            if not self.config.durable:
                raise ServiceError("snapshots need a data_dir (durable mode)")
            self._snapshot_locked()

    def _snapshot_locked(self) -> None:
        """Per-worker snapshots + coordinator meta; caller holds the lock.

        Each snapshot command is a barrier behind that worker's queued
        batches, so the captured states are mutually consistent with
        everything acknowledged so far.
        """
        self._fanout_locked("snapshot")
        self._write_meta_locked()
        self._last_snapshot_events = self.epoch_events
        self.metrics.ops.add("snapshots", self.config.num_shards)

    # ------------------------------------------------------------------
    # queries (consistent reads under the re-entrant ingest lock)
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        with self._ingest_lock:
            return self._epoch

    @property
    def epoch_events(self) -> int:
        """Events accepted into the currently open epoch."""
        with self._ingest_lock:
            return sum(self._accepted_per_shard)

    @property
    def total_events(self) -> int:
        with self._ingest_lock:
            return sum(self._total_per_shard)

    def reputation_of(self, node: int, live: bool = False) -> float:
        """Published cumulative reputation of ``node``.

        ``live=True`` round-trips to the owning worker (a barrier
        behind its queue) instead of reading the last published value.
        """
        if not 0 <= node < self.config.n:
            raise UnknownNodeError(node, self.config.n)
        if live:
            with self._ingest_lock:
                shard_id = self.config.shard_of(node)
                self._ensure_workers_alive_locked([shard_id])
                worker = self.workers[shard_id]
                return cast(float, worker.call("cumulative_of", node))
        with self._ingest_lock:
            return float(self._published[node])

    def suspects(self) -> Dict[str, object]:
        """Latest epoch's published verdicts (epoch ``-1`` = none yet)."""
        with self._ingest_lock:
            return dict(self._latest_verdicts)

    def history(self) -> List[Dict[str, object]]:
        """Verdicts of every epoch closed by this process, oldest first."""
        with self._ingest_lock:
            return list(self._history)

    def export_shard_states(self) -> List[Dict[str, object]]:
        """Every worker's exported detector + cumulative state.

        Byte-comparable (canonical JSON) with the thread service's
        per-shard exports — the equivalence tests' instrument.
        """
        with self._ingest_lock:
            return [cast(Dict[str, object], state)
                    for state in self._fanout_locked("export")]

    def epoch_wal_events(self) -> List[Rating]:
        """The open epoch's accepted events, re-read from worker WALs.

        The replay/audit instrument (``repro replay --verify``): in
        durable mode every acknowledged batch is already in its
        worker's ``shard-NN/wal`` segment, so with ingest quiesced the
        concatenation over workers is exactly the epoch's accepted
        stream.  Order across shards is arbitrary; the batch
        cross-check only folds events into a commutative count matrix.
        """
        if not self.config.durable:
            raise ServiceError("WAL replay needs a data_dir (durable mode)")
        data_dir = pathlib.Path(cast(pathlib.Path, self.config.data_dir))
        with self._ingest_lock:
            events: List[Rating] = []
            for shard_id in range(self.config.num_shards):
                wal = WriteAheadLog(shard_data_dir(data_dir, shard_id) / "wal")
                events.extend(wal.replay(self._epoch, n=self.config.n))
            return events

    def status(self) -> Dict[str, object]:
        """Health document for ``GET /healthz``.

        The per-worker block is parent-tracked (pid, liveness, queue
        depth, restart count) read under the (re-entrant) ingest lock —
        a consistent view with no worker round-trips, so ``/healthz``
        stays responsive even when every queue is saturated.
        """
        with self._ingest_lock:
            return {
                "status": "ok" if self._started else "stopped",
                "mode": "process",
                "epoch": self._epoch,
                "epoch_events": self.epoch_events,
                "total_events": self.total_events,
                "shards": self.config.num_shards,
                "queue_depths": [w.queue_depth() for w in self.workers],
                "durable": self.config.durable,
                "last_close_error": self._last_close_error,
                "workers": [
                    {
                        "shard": worker.shard_id,
                        "pid": worker.pid,
                        "alive": worker.alive,
                        "queue_depth": worker.queue_depth(),
                        "epoch_events":
                            self._accepted_per_shard[worker.shard_id],
                        "restarts": self._restarts[worker.shard_id],
                        "restart_ms":
                            worker.ready_status.get("restart_ms", 0.0),
                    }
                    for worker in self.workers
                ],
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._ingest_lock:
            return (
                f"ProcessDetectionService(n={self.config.n}, "
                f"workers={self.config.num_shards}, epoch={self._epoch}, "
                f"events={self.total_events})"
            )
