"""Atomic JSON snapshots of the service's sharded state.

A snapshot captures, at a consistent point (all shard queues drained,
ingest paused): the epoch number, how many of the current epoch's WAL
events are already folded into the shard counters (``wal_applied``),
every shard's detector + cumulative-reputation state, and the last
published verdicts.  Restart = load latest snapshot, then replay the
WAL tail ``[wal_applied, ...)`` — provably reaching the same counters
and verdicts as an uninterrupted run (property-tested).

Files are written to a temporary name and atomically renamed, so a
crash mid-write can never leave a torn snapshot as the latest one.
"""

from __future__ import annotations

import json
import mmap
import os
import pathlib
import re
from typing import Dict, List, Optional, Tuple, Union, cast

from repro.errors import RecoveryError
from repro.ratings.backends import IntArray, map_image, write_image

__all__ = ["SnapshotStore", "StateImageStore", "SNAPSHOT_FORMAT",
           "META_FORMAT", "write_meta", "read_meta"]

#: Bumped whenever the snapshot layout changes incompatibly.
SNAPSHOT_FORMAT = 1

#: Bumped whenever the process-mode coordinator meta layout changes
#: incompatibly (see ``repro.service.process``).
META_FORMAT = 1


def write_meta(path: pathlib.Path, state: Dict[str, object]) -> None:
    """Atomically persist the process-mode coordinator meta document.

    Stamps ``format`` with :data:`META_FORMAT` and writes via
    tmp + fsync + rename, so the epoch commit point
    (``ProcessDetectionService.end_period``) can never leave a torn
    ``meta.json``.
    """
    payload = dict(state)
    payload["format"] = META_FORMAT
    tmp = path.with_suffix(".json.tmp")
    with tmp.open("w") as handle:
        json.dump(payload, handle, separators=(",", ":"), sort_keys=True)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def read_meta(path: pathlib.Path) -> Optional[Dict[str, object]]:
    """Load a coordinator meta document, or ``None`` when absent.

    Validates only the envelope (readable JSON object of the supported
    :data:`META_FORMAT`); field-level validation against the live
    configuration belongs to the caller.
    """
    if not path.exists():
        return None
    try:
        with path.open() as handle:
            meta = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise RecoveryError(
            f"cannot read coordinator meta {path}: {exc}"
        ) from None
    if not isinstance(meta, dict) or meta.get("format") != META_FORMAT:
        raise RecoveryError(
            f"coordinator meta {path} has format "
            f"{meta.get('format') if isinstance(meta, dict) else '?'!r}, "
            f"this build reads format {META_FORMAT}"
        )
    return cast(Dict[str, object], meta)

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{8})-(\d{10})\.json$")


class SnapshotStore:
    """Writes, lists, prunes and loads snapshot files in one directory."""

    def __init__(self, directory: Union[str, pathlib.Path],
                 keep: int = 3) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        if keep < 1:
            raise RecoveryError(f"keep must be >= 1, got {keep}")
        self.keep = keep

    def path_for(self, epoch: int, wal_applied: int) -> pathlib.Path:
        return self.directory / f"snapshot-{epoch:08d}-{wal_applied:010d}.json"

    def save(self, state: Dict[str, object]) -> pathlib.Path:
        """Atomically persist ``state`` and prune old snapshots.

        ``state`` must carry integer ``epoch`` and ``wal_applied`` keys;
        the pair orders snapshots and names the file.
        """
        epoch = state["epoch"]
        wal_applied = state["wal_applied"]
        if not isinstance(epoch, int) or not isinstance(wal_applied, int):
            raise RecoveryError(
                f"snapshot state needs integer epoch/wal_applied, got "
                f"{epoch!r}/{wal_applied!r}"
            )
        payload = dict(state)
        payload["format"] = SNAPSHOT_FORMAT
        final = self.path_for(epoch, wal_applied)
        tmp = final.with_suffix(".json.tmp")
        with tmp.open("w") as handle:
            json.dump(payload, handle, separators=(",", ":"), sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, final)
        self._prune()
        return final

    def list(self) -> List[Tuple[int, int, pathlib.Path]]:
        """All snapshots as ``(epoch, wal_applied, path)``, ascending."""
        out: List[Tuple[int, int, pathlib.Path]] = []
        for entry in self.directory.iterdir():
            match = _SNAPSHOT_RE.match(entry.name)
            if match:
                out.append((int(match.group(1)), int(match.group(2)), entry))
        return sorted(out)

    def load_latest(self) -> Optional[Dict[str, object]]:
        """The most recent snapshot's state, or ``None`` if there is none.

        "Most recent" is the lexicographically greatest
        ``(epoch, wal_applied)`` — exactly the write order, because the
        service only snapshots with monotonically advancing positions.
        """
        snapshots = self.list()
        if not snapshots:
            return None
        _, _, path = snapshots[-1]
        try:
            with path.open() as handle:
                state = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise RecoveryError(f"cannot read snapshot {path}: {exc}") from None
        if not isinstance(state, dict):
            raise RecoveryError(f"snapshot {path} is not a JSON object")
        if state.get("format") != SNAPSHOT_FORMAT:
            raise RecoveryError(
                f"snapshot {path} has format {state.get('format')!r}, "
                f"this build reads format {SNAPSHOT_FORMAT}"
            )
        return cast(Dict[str, object], state)

    def _prune(self) -> None:
        snapshots = self.list()
        for _, _, path in snapshots[: -self.keep]:
            path.unlink(missing_ok=True)


_IMAGE_RE = re.compile(r"^image-(\d{8})-(\d{10})\.repm$")


class StateImageStore:
    """The binary twin of :class:`SnapshotStore` for the mmap backend.

    Instead of a JSON document per ``(epoch, wal_applied)`` position, a
    worker publishes one ``image-EEEEEEEE-WWWWWWWWWW.repm`` file — the
    schema-versioned container of :func:`repro.ratings.backends.write_image`
    holding the detector's pair/node counters and the cumulative
    reputation totals as raw ``int64`` segments.  Recovery maps the
    latest image in O(1) (``mmap`` + ``np.frombuffer``) rather than
    parsing and re-inserting state, which is what makes shard-worker
    restarts independent of accumulated state size.  The same atomic
    tmp + fsync + rename publish discipline applies, inside
    ``write_image``.
    """

    def __init__(self, directory: Union[str, pathlib.Path],
                 keep: int = 3) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        if keep < 1:
            raise RecoveryError(f"keep must be >= 1, got {keep}")
        self.keep = keep

    def path_for(self, epoch: int, wal_applied: int) -> pathlib.Path:
        return self.directory / f"image-{epoch:08d}-{wal_applied:010d}.repm"

    def save(self, arrays: Dict[str, IntArray],
             meta: Dict[str, object]) -> pathlib.Path:
        """Atomically publish an image and prune old ones.

        ``meta`` must carry integer ``epoch`` and ``wal_applied`` keys;
        the pair orders images and names the file.
        """
        epoch = meta["epoch"]
        wal_applied = meta["wal_applied"]
        if not isinstance(epoch, int) or not isinstance(wal_applied, int):
            raise RecoveryError(
                f"image meta needs integer epoch/wal_applied, got "
                f"{epoch!r}/{wal_applied!r}"
            )
        final = write_image(self.path_for(epoch, wal_applied), arrays, meta)
        self._prune()
        return final

    def list(self) -> List[Tuple[int, int, pathlib.Path]]:
        """All images as ``(epoch, wal_applied, path)``, ascending."""
        out: List[Tuple[int, int, pathlib.Path]] = []
        for entry in self.directory.iterdir():
            match = _IMAGE_RE.match(entry.name)
            if match:
                out.append((int(match.group(1)), int(match.group(2)), entry))
        return sorted(out)

    def load_latest(self) -> Optional[Tuple[Dict[str, IntArray],
                                            Dict[str, object], mmap.mmap]]:
        """Map the most recent image, or ``None`` if there is none.

        Returns ``(arrays, meta, mapping)`` — the arrays are read-only
        views into ``mapping``; hold the mapping as long as any view is
        alive.  Container-level corruption surfaces as
        :class:`~repro.errors.RecoveryError`.
        """
        images = self.list()
        if not images:
            return None
        _, _, path = images[-1]
        try:
            return map_image(path)
        except Exception as exc:
            raise RecoveryError(f"cannot map image {path}: {exc}") from None

    def _prune(self) -> None:
        images = self.list()
        for _, _, path in images[: -self.keep]:
            path.unlink(missing_ok=True)
