"""Configuration for the online detection service.

One frozen dataclass carries every knob the service needs; validation
happens at construction so a bad deployment fails before any thread or
file is created (the same eager-failure convention as
:class:`repro.experiments.config` and the simulator).
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core.thresholds import DetectionThresholds
from repro.errors import ConfigurationError

__all__ = ["ServiceConfig"]


@dataclass(frozen=True)
class ServiceConfig:
    """Deployment parameters for :class:`repro.service.DetectionService`.

    Attributes
    ----------
    n:
        Universe size (node ids ``0 .. n-1``).
    num_shards:
        Number of shard workers; the rating stream is partitioned by
        ``target % num_shards`` so every counter a target needs lives
        on exactly one shard.
    thresholds:
        Detection thresholds shared by every shard detector.
    multi_booster_exclusion:
        Forwarded to each :class:`~repro.core.online.OnlineCollusionDetector`.
    queue_capacity:
        Bounded depth of each shard's ingest queue, in *batches*.  A
        full queue triggers explicit backpressure
        (:class:`~repro.errors.BackpressureError`) — never a silent drop.
    data_dir:
        Directory for the WAL and snapshots.  ``None`` runs the service
        ephemeral (no durability) — useful for benchmarks and tests of
        the pure ingest path.
    snapshot_every:
        Mid-epoch snapshot cadence in accepted events; ``0`` snapshots
        only at epoch boundaries.  Smaller values shorten the WAL tail
        replayed after a crash at the cost of more snapshot writes.
    fsync:
        When true, every WAL append is fsync'd before the batch is
        acknowledged (durable against power loss, not just process
        crash).  Defaults off: the equivalence guarantees only need
        write ordering, and fsync dominates ingest latency.
    keep_snapshots:
        How many snapshot files to retain (older ones are pruned).
    worker_timeout_s:
        How long the process-per-shard front-end waits for a shard
        worker to answer a command or acknowledge a durable batch
        before declaring it crashed
        (:class:`~repro.errors.WorkerCrashError`).  Ignored by the
        thread-per-shard :class:`~repro.service.DetectionService`.
    host / port:
        Bind address for the HTTP query API (``port=0`` lets the OS
        pick a free port — tests rely on this).
    matrix_backend:
        :class:`~repro.ratings.matrix.RatingMatrix` storage engine
        (``"dense"`` / ``"sparse"`` / ``"mmap"``) used wherever the
        service materializes a period matrix — e.g.
        ``repro replay --verify``'s batch cross-check.  ``"mmap"``
        additionally switches durable process-mode shard workers to
        binary state images (``shard-NN/images/*.repm``) that restarts
        map back in O(1) instead of parsing a JSON snapshot.  ``None``
        keeps the process default.  Unknown names are rejected with
        the available set listed.
    """

    n: int
    num_shards: int = 4
    thresholds: DetectionThresholds = field(default_factory=DetectionThresholds)
    multi_booster_exclusion: bool = True
    queue_capacity: int = 1024
    data_dir: Optional[Union[str, pathlib.Path]] = None
    snapshot_every: int = 0
    fsync: bool = False
    keep_snapshots: int = 3
    worker_timeout_s: float = 60.0
    host: str = "127.0.0.1"
    port: int = 8642
    matrix_backend: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.n, int) or isinstance(self.n, bool) or self.n < 1:
            raise ConfigurationError(f"n must be an int >= 1, got {self.n!r}")
        if not isinstance(self.num_shards, int) or self.num_shards < 1:
            raise ConfigurationError(
                f"num_shards must be an int >= 1, got {self.num_shards!r}"
            )
        if self.num_shards > self.n:
            raise ConfigurationError(
                f"num_shards ({self.num_shards}) cannot exceed n ({self.n}) — "
                f"shards beyond the universe would own no targets"
            )
        if self.queue_capacity < 1:
            raise ConfigurationError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.snapshot_every < 0:
            raise ConfigurationError(
                f"snapshot_every must be >= 0, got {self.snapshot_every}"
            )
        if self.keep_snapshots < 1:
            raise ConfigurationError(
                f"keep_snapshots must be >= 1, got {self.keep_snapshots}"
            )
        if not self.worker_timeout_s > 0:
            raise ConfigurationError(
                f"worker_timeout_s must be > 0, got {self.worker_timeout_s!r}"
            )
        if not 0 <= self.port <= 65535:
            raise ConfigurationError(f"port must be in [0, 65535], got {self.port}")
        if self.matrix_backend is not None:
            from repro.ratings.backends import available_backends

            if self.matrix_backend not in available_backends():
                raise ConfigurationError(
                    f"unknown matrix backend {self.matrix_backend!r}; "
                    f"choose from {list(available_backends())}"
                )
        if self.data_dir is not None:
            object.__setattr__(self, "data_dir", pathlib.Path(self.data_dir))

    @property
    def durable(self) -> bool:
        """Whether WAL + snapshot durability is enabled."""
        return self.data_dir is not None

    def shard_of(self, target: int) -> int:
        """Owning shard of ``target`` (the partition function)."""
        return target % self.num_shards
