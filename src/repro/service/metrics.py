"""Service observability: counters and latency histograms.

Built on :class:`repro.util.counters.OpCounter` (now thread-safe), so
one metrics object is shared by the ingest front-end, every shard
worker and the HTTP ``/metrics`` endpoint without extra locking.

Latencies are recorded into fixed power-of-two microsecond buckets —
cumulative ("less-or-equal") semantics like Prometheus histograms, so
quantiles can be estimated downstream and bucket counts are monotone.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple

from repro.util.counters import OpCounter

__all__ = ["LatencyHistogram", "ServiceMetrics"]

#: Bucket upper bounds in microseconds (powers of two up to ~8.4 s).
_BUCKETS_US: Tuple[int, ...] = tuple(2 ** k for k in range(4, 24))


class LatencyHistogram:
    """Bucketed latency recorder on top of a shared :class:`OpCounter`.

    Each observation increments one bucket counter named
    ``{name}_le_{bound}us`` (the smallest bound >= the observation, or
    ``{name}_le_inf``), plus ``{name}_count`` and ``{name}_sum_us``.
    Because every increment is a thread-safe ``OpCounter.add``, shard
    workers can record concurrently with metric reads.
    """

    __slots__ = ("name", "ops")

    def __init__(self, name: str, ops: Optional[OpCounter] = None) -> None:
        self.name = name
        self.ops = ops if ops is not None else OpCounter()

    def observe(self, seconds: float) -> None:
        """Record one latency observation (in seconds)."""
        if seconds < 0:
            seconds = 0.0
        micros = int(seconds * 1e6)
        label = "inf"
        for bound in _BUCKETS_US:
            if micros <= bound:
                label = f"{bound}us"
                break
        self.ops.add(f"{self.name}_le_{label}", 1)
        self.ops.add(f"{self.name}_count", 1)
        self.ops.add(f"{self.name}_sum_us", micros)

    def time(self) -> "_Timer":
        """Context manager that observes the block's wall time."""
        return _Timer(self)

    # -- read side -----------------------------------------------------
    def count(self) -> int:
        return self.ops.get(f"{self.name}_count")

    def mean_us(self) -> float:
        count = self.count()
        return self.ops.get(f"{self.name}_sum_us") / count if count else 0.0

    def buckets(self) -> Dict[str, int]:
        """Cumulative bucket counts ``{"<=16us": k, ...}`` (monotone)."""
        snapshot = self.ops.snapshot()
        out: Dict[str, int] = {}
        running = 0
        for bound in _BUCKETS_US:
            running += snapshot.get(f"{self.name}_le_{bound}us", 0)
            out[f"<={bound}us"] = running
        out["<=inf"] = running + snapshot.get(f"{self.name}_le_inf", 0)
        return out


class _Timer:
    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: LatencyHistogram) -> None:
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *_exc: object) -> None:
        self._histogram.observe(time.perf_counter() - self._start)


class ServiceMetrics:
    """All service counters behind one object.

    Counter names (the stable observability contract, asserted by
    tests and documented in ``docs/SERVICE.md``):

    * ``ingest_batches`` / ``ingest_events`` — accepted work;
    * ``ingest_rejected_batches`` / ``ingest_rejected_events`` —
      backpressure rejections (nothing from these batches was applied);
    * ``wal_appends`` — durable WAL writes;
    * ``snapshots`` — snapshot files written;
    * ``periods_closed`` — completed epoch orchestrations;
    * ``detections`` — convicted pairs published across all epochs;
    * ``detector:*`` — the shard detectors' own algorithmic op counts,
      merged in at each period close.

    The ``screen`` block of :meth:`to_dict` distills the incremental
    screen's health from the ``detector:*`` counters:
    ``pairs_enqueued`` (flipped-bound pairs queued by ``observe``),
    ``pairs_evaluated`` (pairs actually screened at period close,
    ``detector:pact_eval``) and ``full_screens`` (whole-universe
    passes).  A ``pairs_evaluated``/``pairs_enqueued`` ratio far above
    1 means the screen is degenerating toward full passes.

    Histograms: ``ingest`` (per accepted batch, WAL + enqueue),
    ``end_period`` (full orchestration: drain, merge, snapshot) and
    ``worker_restart`` (process-mode worker recovery, the number the
    mmap state images shrink).
    """

    def __init__(self) -> None:
        self.ops = OpCounter()
        self.ingest_latency = LatencyHistogram("ingest", self.ops)
        self.end_period_latency = LatencyHistogram("end_period", self.ops)
        self.worker_restart_latency = LatencyHistogram(
            "worker_restart", self.ops
        )

    def merge_detector_ops(self, detector_ops: Dict[str, int]) -> None:
        """Fold a shard detector's op-count diff in, namespaced."""
        for name, value in detector_ops.items():
            self.ops.add(f"detector:{name}", value)

    def to_dict(self) -> Dict[str, object]:
        """JSON document served by ``GET /metrics``."""
        counters = self.ops.snapshot()
        histogram_names = ("ingest", "end_period", "worker_restart")
        plain = {
            name: value
            for name, value in sorted(counters.items())
            if not any(name.startswith(f"{h}_le_") or name == f"{h}_count"
                       or name == f"{h}_sum_us" for h in histogram_names)
        }
        histograms: Dict[str, object] = {}
        for histogram in (self.ingest_latency, self.end_period_latency,
                          self.worker_restart_latency):
            histograms[histogram.name] = {
                "count": histogram.count(),
                "mean_us": round(histogram.mean_us(), 3),
                "buckets": histogram.buckets(),
            }
        screen = {
            "pairs_enqueued": counters.get("detector:pairs_enqueued", 0),
            "pairs_evaluated": counters.get("detector:pact_eval", 0),
            "full_screens": counters.get("detector:full_screen", 0),
        }
        return {"counters": plain, "screen": screen,
                "histograms": histograms}
