"""Stdlib HTTP query API for the detection service.

A thin JSON adapter over the detection service — either the
thread-per-shard :class:`repro.service.DetectionService` or the
process-per-shard :class:`repro.service.ProcessDetectionService`; the
two expose the same surface, so the front-end is shared.  No
framework, no new dependencies, just ``http.server`` with a threading
mixin so queries are served while ratings stream in.

Endpoints
---------
``GET /healthz``
    Liveness + epoch/queue status; the process-per-shard service adds
    a ``workers`` block (pid, liveness, queue depth, restarts per
    shard worker).
``GET /metrics``
    Ingest/detection counters and latency histograms (JSON).
``GET /reputation/{node}``
    Published cumulative reputation (``?live=1`` reads the owning
    shard's current accumulator).
``GET /suspects``
    Latest epoch's published verdict set (``?history=1`` for all
    epochs closed by this process).
``GET /collusion-graph``
    The open epoch's live suspect graph and ring-detection verdicts
    (``?floor=0.5`` tunes the candidate-edge admission fraction of
    ``T_N``); read-only, the epoch keeps accumulating.
``POST /ratings``
    Ingest a batch: ``{"ratings": [{"rater", "target", "value",
    "time"?}, ...]}`` (or one bare rating object).  ``202`` with the
    accepted count; ``429`` + ``Retry-After`` under backpressure (the
    batch left no state — retry it verbatim after backing off);
    ``400`` on validation errors; ``503`` when the service is not
    running or a shard worker crashed mid-request.  Unlike 429, a
    worker-crash 503 is **not** safely retryable verbatim: sub-batches
    acknowledged by surviving shards are already durably applied, so a
    blind retry double-counts them (the response body says so).
``POST /admin/end-period``
    Close the epoch and return its verdicts.
``POST /admin/snapshot``
    Force a consistent snapshot (durable mode only).
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple, Union
from urllib.parse import parse_qs, urlparse

from repro.errors import (
    BackpressureError,
    ConfigurationError,
    RatingError,
    ReproError,
    ServiceError,
    TraceError,
    UnknownNodeError,
    WorkerCrashError,
)
from repro.ratings.io import decode_jsonl
from repro.service.coordinator import DetectionService
from repro.service.process import ProcessDetectionService

__all__ = ["ServiceHTTPServer"]

#: Both service flavours share one surface; the adapter serves either.
AnyDetectionService = Union[DetectionService, ProcessDetectionService]

_REPUTATION_RE = re.compile(r"^/reputation/(\d+)$")
_MAX_BODY = 8 * 1024 * 1024  # 8 MiB request cap — bound memory per request


class _Server(ThreadingHTTPServer):
    """The listening socket, carrying the service for request handlers."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int],
                 service: AnyDetectionService) -> None:
        super().__init__(address, _Handler)
        self.service = service


class _Handler(BaseHTTPRequestHandler):
    """One request; the service lives on the server object."""

    server_version = "repro-service/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> AnyDetectionService:
        assert isinstance(self.server, _Server)
        return self.server.service

    # -- plumbing ------------------------------------------------------
    def log_message(self, *_args: object) -> None:  # quiet by default
        pass

    def _send_json(self, status: int, payload: Dict[str, object],
                   headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str,
               headers: Optional[Dict[str, str]] = None) -> None:
        self._send_json(status, {"error": message}, headers)

    def _read_body(self) -> Optional[bytes]:
        length = int(self.headers.get("Content-Length", 0))
        if length > _MAX_BODY:
            self._error(413, f"request body exceeds {_MAX_BODY} bytes")
            return None
        return self.rfile.read(length)

    # -- GET -----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib handler API)
        parsed = urlparse(self.path)
        query = parse_qs(parsed.query)
        path = parsed.path
        try:
            if path == "/healthz":
                self._send_json(200, self.service.status())
            elif path == "/metrics":
                self._send_json(200, self.service.metrics.to_dict())
            elif path == "/suspects":
                if query.get("history", ["0"])[0] in ("1", "true"):
                    self._send_json(200, {"epochs": self.service.history()})
                else:
                    self._send_json(200, self.service.suspects())
            elif path == "/collusion-graph":
                raw_floor = query.get("floor", ["0.5"])[0]
                try:
                    floor = float(raw_floor)
                except ValueError:
                    return self._error(
                        400, f"floor must be a number, got {raw_floor!r}"
                    )
                self._send_json(
                    200, self.service.collusion_graph(edge_floor=floor)
                )
            else:
                match = _REPUTATION_RE.match(path)
                if match:
                    node = int(match.group(1))
                    live = query.get("live", ["0"])[0] in ("1", "true")
                    value = self.service.reputation_of(node, live=live)
                    self._send_json(
                        200,
                        {"node": node, "reputation": value,
                         "epoch": self.service.epoch, "live": live},
                    )
                else:
                    self._error(404, f"no such resource: {path}")
        except UnknownNodeError as exc:
            self._error(404, str(exc))
        except ConfigurationError as exc:
            self._error(400, str(exc))
        except ReproError as exc:
            self._error(500, str(exc))

    # -- POST ----------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 (stdlib handler API)
        path = urlparse(self.path).path
        if path == "/ratings":
            self._post_ratings()
        elif path == "/admin/end-period":
            self._post_end_period()
        elif path == "/admin/snapshot":
            self._post_snapshot()
        else:
            self._error(404, f"no such resource: {path}")

    def _post_ratings(self) -> None:
        body = self._read_body()
        if body is None:
            return
        try:
            document = json.loads(body or b"{}")
        except json.JSONDecodeError as exc:
            return self._error(400, f"invalid JSON body: {exc}")
        if isinstance(document, dict) and "ratings" in document:
            records = document["ratings"]
        elif isinstance(document, dict):
            records = [document]
        else:
            records = document
        if not isinstance(records, list):
            return self._error(400, "body must be a rating object or "
                                    "{'ratings': [...]}")
        try:
            batch = [
                decode_jsonl(json.dumps(record), n=self.service.config.n,
                             where=f"ratings[{index}]")
                for index, record in enumerate(records)
            ]
        except TraceError as exc:
            return self._error(400, str(exc))
        try:
            accepted = self.service.submit(batch)
        except BackpressureError as exc:
            # 429 Too Many Requests: the batch left zero state, so the
            # client can retry it verbatim after Retry-After seconds.
            return self._error(429, str(exc), headers={"Retry-After": "1"})
        except (RatingError, UnknownNodeError) as exc:
            return self._error(400, str(exc))
        except WorkerCrashError as exc:
            # 503, but NOT verbatim-retryable like a 429: sub-batches
            # acknowledged by surviving shards are already applied, so a
            # blind retry would double-count them (at-least-once).
            return self._error(
                503,
                f"{exc} — batch partially applied; do not retry verbatim "
                f"(surviving shards already recorded their sub-batches)",
            )
        except ServiceError as exc:
            return self._error(503, str(exc))
        self._send_json(202, {"accepted": accepted,
                              "epoch": self.service.epoch})

    def _post_end_period(self) -> None:
        try:
            result = self.service.end_period()
        except ReproError as exc:
            return self._error(500, str(exc))
        self._send_json(200, result.to_dict())

    def _post_snapshot(self) -> None:
        try:
            self.service.snapshot()
        except ServiceError as exc:
            return self._error(409, str(exc))
        self._send_json(200, {"snapshotted": True,
                              "epoch": self.service.epoch})


class ServiceHTTPServer:
    """Owns the listening socket and its serving thread.

    ``port=0`` binds an ephemeral port; read :attr:`address` for the
    actual one.  ``serve_forever`` runs on a daemon thread so the
    caller (CLI, tests, examples) keeps control.
    """

    def __init__(self, service: AnyDetectionService,
                 host: Optional[str] = None,
                 port: Optional[int] = None) -> None:
        self.service = service
        bind_host = host if host is not None else service.config.host
        bind_port = port if port is not None else service.config.port
        self._server = _Server((bind_host, bind_port), service)
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``."""
        bound_host, bound_port = self._server.server_address[:2]
        return str(bound_host), int(bound_port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ServiceHTTPServer":
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="repro-service-http", daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Blocking serve (the CLI's foreground mode)."""
        self._server.serve_forever()

    def shutdown(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
