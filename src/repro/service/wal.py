"""Epoch-segmented JSONL write-ahead log.

Durability design
-----------------
Every accepted rating batch is appended to the current epoch's segment
*before* it is handed to the shard workers, so the WAL is always a
superset of applied state.  One segment per epoch
(``wal-00000042.jsonl``) keeps replay bounded: recovery loads the
latest snapshot and replays only the *tail* of the current epoch's
segment (events past the snapshot's ``wal_applied`` mark).  Closed
epochs' segments are never read on the hot path — they remain on disk
as the authoritative trace for offline tooling (``repro replay``,
:func:`repro.ratings.load_jsonl`).

The record format is the library-wide JSONL rating format from
:mod:`repro.ratings.io` — the WAL is an ordinary event log any trace
tool can read.
"""

from __future__ import annotations

import os
import pathlib
import re
from typing import IO, Iterator, List, Optional, Sequence, Union

from repro.errors import ServiceError
from repro.ratings.events import Rating
from repro.ratings.io import iter_jsonl, write_jsonl_events

__all__ = ["WriteAheadLog"]

_SEGMENT_RE = re.compile(r"^wal-(\d{8})\.jsonl$")


class WriteAheadLog:
    """Append-ordered, epoch-segmented rating log.

    Not thread-safe by itself — the service serializes all appends
    under its ingest lock, which also guarantees that WAL order equals
    acknowledgement order.
    """

    def __init__(self, directory: Union[str, pathlib.Path],
                 fsync: bool = False) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self._handle: Optional[IO[str]] = None
        self._epoch: Optional[int] = None

    # ------------------------------------------------------------------
    # segment naming
    # ------------------------------------------------------------------
    def segment_path(self, epoch: int) -> pathlib.Path:
        return self.directory / f"wal-{epoch:08d}.jsonl"

    def epochs(self) -> List[int]:
        """Epoch numbers with a segment on disk, ascending."""
        out: List[int] = []
        for entry in self.directory.iterdir():
            match = _SEGMENT_RE.match(entry.name)
            if match:
                out.append(int(match.group(1)))
        return sorted(out)

    # ------------------------------------------------------------------
    # write side
    # ------------------------------------------------------------------
    def open_epoch(self, epoch: int) -> None:
        """Direct subsequent appends at ``epoch``'s segment."""
        if epoch < 0:
            raise ServiceError(f"epoch must be non-negative, got {epoch}")
        self.close()
        self._handle = self.segment_path(epoch).open("a")
        self._epoch = epoch

    def append(self, events: Sequence[Rating]) -> int:
        """Durably append a batch to the open epoch segment.

        The batch is flushed (and optionally fsync'd) before returning,
        so once the caller acknowledges the batch it will survive a
        process crash.
        """
        if self._handle is None or self._epoch is None:
            raise ServiceError("no epoch segment open — call open_epoch() first")
        count = write_jsonl_events(self._handle, events)
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        return count

    def rotate(self, new_epoch: int) -> None:
        """Close the current segment and open ``new_epoch``'s."""
        self.open_epoch(new_epoch)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
            self._epoch = None

    # ------------------------------------------------------------------
    # read side
    # ------------------------------------------------------------------
    def replay(self, epoch: int, skip: int = 0,
               n: Optional[int] = None) -> Iterator[Rating]:
        """Stream ``epoch``'s events, skipping the first ``skip``.

        A missing segment yields nothing — an epoch with no accepted
        events never opened a file, which is indistinguishable from an
        empty one on purpose.
        """
        path = self.segment_path(epoch)
        if not path.exists():
            return iter(())
        return iter_jsonl(path, n=n, skip=skip)

    def count(self, epoch: int) -> int:
        """Number of events recorded for ``epoch``."""
        total = 0
        for _ in self.replay(epoch):
            total += 1
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WriteAheadLog({str(self.directory)!r}, epoch={self._epoch})"
